//! Live single-pass sampling: region detection *during* the timing
//! simulation, with no profiling pass.
//!
//! The two-phase pipeline learns each thread block's features (stall
//! probability, instruction count) from the emulator profile, clusters
//! epochs offline, and only then simulates. The live sampler instead
//! consumes the same per-TB feature counters as they stream out of the
//! simulator's retire hook ([`tbpoint_sim::SamplingHook::on_retire_stats`])
//! and rebuilds the epoch/cluster/region structure on the fly:
//!
//! * **Epochs** are `occupancy`-sized runs of consecutive TB ids, exactly
//!   as in the offline [`crate::intra::build_epochs`]. An epoch is
//!   *complete* once every one of its blocks has either retired (with
//!   feature counters) or been skipped; completed epochs are classified
//!   in index order.
//! * **Online clustering** is leader clustering on the epoch's mean
//!   stall probability: an epoch joins the first cluster whose running
//!   centre is within a relative `sigma` band, otherwise it founds a new
//!   cluster (`LiveEpochDetected` event either way).
//! * **Warming** starts after `min_run` consecutive epochs land in the
//!   same (non-abandoned) cluster, and reuses the designated-TB
//!   sampling-unit machinery of [`crate::sampling::RegionSampler`]: once
//!   the trailing `warming_window` unit IPCs agree pairwise within the
//!   warming threshold, fast-forwarding begins (`LiveFastForward`).
//! * **Fast-forwarding** skips dispatched blocks, predicting their
//!   cycles as `estimated insts / unit IPC`. Every `guard_period`-th
//!   dispatch is simulated as a *guard*; a guard whose stall probability
//!   strays more than `destab_tolerance` (relative) from the cluster
//!   centre — or a completed epoch that classifies into a different
//!   cluster — *destabilises* the sampler (`LiveDestabilised`) and
//!   returns it to detailed simulation.
//!
//! Degradation rides the existing ladder: a cluster whose warming budget
//! runs out is abandoned with a `DegradedMode` event and its blocks stay
//! on the detailed path, exactly like an abandoned offline region.
//!
//! Skipped-block instruction counts are *estimates*: exact when the
//! kernel is block-invariant (identical traces per TB, known from
//! [`tbpoint_emu::TraceDeps`]), otherwise the running mean instruction
//! count of the cluster's simulated blocks.

use crate::error::{invalid, TbError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use tbpoint_emu::TbStats;
use tbpoint_ir::TbId;
use tbpoint_obs::{DegradeReason, EventKind, NullRecorder, Recorder};
use tbpoint_sim::{DispatchDecision, SamplingHook};

/// Relative-band floor: clusters whose centre is (near) zero still accept
/// exactly-zero epochs without the band collapsing to nothing.
const EPS: f64 = 1e-9;

/// Accounting produced by one live-sampled launch (the single-pass
/// analogue of [`crate::sampling::IntraOutcome`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct LiveOutcome {
    /// Thread blocks skipped during fast-forward periods.
    pub skipped_tbs: u32,
    /// *Estimated* warp instructions belonging to skipped blocks (exact
    /// for block-invariant kernels, cluster running mean otherwise).
    pub skipped_warp_insts: u64,
    /// Predicted cycles those instructions would have taken, from the
    /// last warm sampling unit's IPC.
    pub predicted_skipped_cycles: f64,
    /// Sampling units completed (diagnostic).
    pub units_observed: u32,
    /// Epochs completed and classified (diagnostic).
    pub epochs_classified: u32,
    /// Distinct clusters discovered online (diagnostic).
    pub clusters_discovered: u32,
    /// Warming phases entered (the live analogue of regions entered).
    pub regions_entered: u32,
    /// Guard blocks simulated during fast-forward periods.
    pub guard_tbs: u32,
    /// Fast-forward periods cut short because a guard block (or a fresh
    /// epoch) no longer matched the cluster.
    pub destabilisations: u32,
    /// Clusters abandoned because their IPC failed to stabilise within
    /// the warming budget (each abandonment is a `DegradedMode` event).
    pub degraded_regions: u32,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Outside,
    Warming(u32),
    FastForward { cluster: u32, ipc: f64 },
}

/// Running statistics of one online cluster.
#[derive(Debug, Clone, Copy)]
struct Cluster {
    /// Running mean of member epochs' mean stall probability.
    center: f64,
    /// Epochs assigned so far (with at least one simulated block).
    epochs: u32,
    /// Total warp instructions of simulated member blocks.
    sum_insts: u64,
    /// Simulated member blocks.
    sim_tbs: u64,
    /// Warming budget ran out: never warm this cluster again.
    abandoned: bool,
}

/// Per-epoch completion accumulator.
#[derive(Debug, Clone, Copy, Default)]
struct EpochAcc {
    /// Blocks retired or skipped.
    done: u32,
    /// Blocks retired with feature counters.
    sim_count: u32,
    /// Sum of simulated blocks' stall probabilities.
    sum_p: f64,
    /// Sum of simulated blocks' warp instructions.
    sum_insts: u64,
}

/// The live sampling hook. Plug into [`tbpoint_sim::simulate_launch`];
/// needs no profile and no region table — only the launch's block count
/// and the GPU's system occupancy.
///
/// Construct with [`LiveSampler::builder`].
pub struct LiveSampler<'a> {
    occupancy: u32,
    num_blocks: u32,
    block_invariant: bool,
    sigma: f64,
    warming_threshold: f64,
    unit_tb_span: u32,
    warming_window: usize,
    warming_budget: Option<u32>,
    min_run: u32,
    guard_period: u32,
    destab_tolerance: f64,
    recorder: &'a dyn Recorder,

    state: State,
    epochs: Vec<EpochAcc>,
    next_epoch: u32,
    clusters: Vec<Cluster>,
    last_cluster: Option<u32>,
    run_cluster: Option<u32>,
    run_len: u32,
    guards: BTreeSet<u32>,
    ff_dispatch_idx: u64,
    exact_insts: Option<u64>,
    global_sum_insts: u64,
    global_sim_tbs: u64,
    designated: Option<u32>,
    need_designation: bool,
    unit_tbs_retired: u32,
    unit_start_cycle: u64,
    unit_start_insts: u64,
    warm_ipcs: Vec<f64>,
    outcome: LiveOutcome,
}

/// Builder for [`LiveSampler`]. Settings left untouched keep the paper's
/// two-phase defaults plus the live-mode defaults of
/// [`crate::predict::TbpointConfig`]; [`LiveSamplerBuilder::build`]
/// validates and reports nonsense values as [`TbError::InvalidConfig`].
pub struct LiveSamplerBuilder<'a> {
    occupancy: u32,
    num_blocks: u32,
    block_invariant: bool,
    sigma: f64,
    threshold: f64,
    unit_tb_span: u32,
    warming_window: usize,
    warming_budget: Option<u32>,
    min_run: u32,
    guard_period: u32,
    destab_tolerance: f64,
    recorder: &'a dyn Recorder,
}

impl<'a> LiveSamplerBuilder<'a> {
    /// The kernel's traces are identical for every thread block (from
    /// [`tbpoint_emu::TraceDeps`]): skipped-block instruction counts are
    /// then *exact*, taken from the first retired block.
    pub fn block_invariant(mut self, invariant: bool) -> Self {
        self.block_invariant = invariant;
        self
    }

    /// Relative band of the online leader clustering (reuses the offline
    /// `intra.sigma`, default 0.2). Must be finite and positive.
    pub fn sigma(mut self, sigma: f64) -> Self {
        self.sigma = sigma;
        self
    }

    /// Warming convergence threshold (paper: 0.10). Must be finite and
    /// positive.
    pub fn threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Designated-TB lifetimes per sampling unit (see
    /// [`crate::sampling::DEFAULT_UNIT_TB_SPAN`]). Must be at least 1.
    pub fn unit_tb_span(mut self, span: u32) -> Self {
        self.unit_tb_span = span;
        self
    }

    /// Trailing units that must agree pairwise before fast-forwarding
    /// (see [`crate::sampling::WARMING_WINDOW`]). Must be at least 2.
    pub fn warming_window(mut self, window: usize) -> Self {
        self.warming_window = window;
        self
    }

    /// Bound the warming phase: a cluster whose per-unit IPC has not
    /// converged after this many closed units is *abandoned* (a
    /// `DegradedMode` event; its blocks simulate in detail). `None`
    /// warms indefinitely.
    pub fn warming_budget(mut self, budget: Option<u32>) -> Self {
        self.warming_budget = budget;
        self
    }

    /// Consecutive same-cluster epochs required before warming starts.
    /// Must be at least 1.
    pub fn min_run(mut self, min_run: u32) -> Self {
        self.min_run = min_run;
        self
    }

    /// During fast-forward, every `period`-th dispatched block is
    /// simulated as a guard instead of skipped. Must be at least 1 (1
    /// means every block is a guard — i.e. no skipping at all).
    pub fn guard_period(mut self, period: u32) -> Self {
        self.guard_period = period;
        self
    }

    /// Relative deviation of a guard block's stall probability from the
    /// cluster centre that destabilises the fast-forward. Must be finite
    /// and positive.
    pub fn destab_tolerance(mut self, tolerance: f64) -> Self {
        self.destab_tolerance = tolerance;
        self
    }

    /// Attach a [`Recorder`]; every epoch classification, state
    /// transition and skipped block is reported to it. The default is
    /// the free [`NullRecorder`].
    pub fn recorder(mut self, recorder: &'a dyn Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Validate the settings and build the sampler.
    ///
    /// # Errors
    ///
    /// [`TbError::InvalidConfig`] naming the offending field when the
    /// occupancy is zero, a band/threshold is non-finite or non-positive,
    /// `unit_tb_span`, `live_min_run` or `live_guard_period` is zero, or
    /// `warming_window` is below 2.
    pub fn build(self) -> Result<LiveSampler<'a>, TbError> {
        if self.occupancy == 0 {
            return Err(invalid("occupancy", "must be at least 1 (got 0)"));
        }
        if !self.sigma.is_finite() || self.sigma <= 0.0 {
            return Err(invalid(
                "intra.sigma",
                format!("must be finite and positive (got {})", self.sigma),
            ));
        }
        if !self.threshold.is_finite() || self.threshold <= 0.0 {
            return Err(invalid(
                "warming_threshold",
                format!("must be finite and positive (got {})", self.threshold),
            ));
        }
        if self.unit_tb_span == 0 {
            return Err(invalid("unit_tb_span", "must be at least 1 (got 0)"));
        }
        if self.warming_window < 2 {
            return Err(invalid(
                "warming_window",
                format!(
                    "needs at least 2 units to compare (got {})",
                    self.warming_window
                ),
            ));
        }
        if let Some(budget) = self.warming_budget {
            if (budget as usize) < self.warming_window {
                return Err(invalid(
                    "warming_budget",
                    format!(
                        "must allow at least warming_window = {} units (got {budget})",
                        self.warming_window
                    ),
                ));
            }
        }
        if self.min_run == 0 {
            return Err(invalid("live_min_run", "must be at least 1 (got 0)"));
        }
        if self.guard_period == 0 {
            return Err(invalid("live_guard_period", "must be at least 1 (got 0)"));
        }
        if !self.destab_tolerance.is_finite() || self.destab_tolerance <= 0.0 {
            return Err(invalid(
                "live_destab_tolerance",
                format!(
                    "must be finite and positive (got {})",
                    self.destab_tolerance
                ),
            ));
        }
        let n_epochs = self.num_blocks.div_ceil(self.occupancy);
        Ok(LiveSampler {
            occupancy: self.occupancy,
            num_blocks: self.num_blocks,
            block_invariant: self.block_invariant,
            sigma: self.sigma,
            warming_threshold: self.threshold,
            unit_tb_span: self.unit_tb_span,
            warming_window: self.warming_window,
            warming_budget: self.warming_budget,
            min_run: self.min_run,
            guard_period: self.guard_period,
            destab_tolerance: self.destab_tolerance,
            recorder: self.recorder,
            state: State::Outside,
            epochs: vec![EpochAcc::default(); n_epochs as usize],
            next_epoch: 0,
            clusters: Vec::new(),
            last_cluster: None,
            run_cluster: None,
            run_len: 0,
            guards: BTreeSet::new(),
            ff_dispatch_idx: 0,
            exact_insts: None,
            global_sum_insts: 0,
            global_sim_tbs: 0,
            designated: None,
            need_designation: true,
            unit_tbs_retired: 0,
            unit_start_cycle: 0,
            unit_start_insts: 0,
            warm_ipcs: Vec::new(),
            outcome: LiveOutcome::default(),
        })
    }
}

impl<'a> LiveSampler<'a> {
    /// Start building a live sampler for a launch of `num_blocks` thread
    /// blocks on a GPU with `occupancy` concurrently resident blocks
    /// (from [`tbpoint_sim::GpuConfig::system_occupancy`]).
    pub fn builder(num_blocks: u32, occupancy: u32) -> LiveSamplerBuilder<'a> {
        LiveSamplerBuilder {
            occupancy,
            num_blocks,
            block_invariant: false,
            sigma: 0.2,
            threshold: 0.10,
            unit_tb_span: crate::sampling::DEFAULT_UNIT_TB_SPAN,
            warming_window: crate::sampling::WARMING_WINDOW,
            warming_budget: None,
            min_run: 2,
            guard_period: 8,
            destab_tolerance: 0.5,
            recorder: &NullRecorder,
        }
    }

    /// The accounting gathered so far (read after simulation).
    pub fn outcome(&self) -> LiveOutcome {
        self.outcome
    }

    /// Blocks in epoch `e` (the last epoch may be ragged).
    fn epoch_size(&self, e: u32) -> u32 {
        let start = e * self.occupancy;
        (self.num_blocks - start).min(self.occupancy)
    }

    /// Leader clustering: the first cluster whose centre is within the
    /// relative `sigma` band wins; otherwise a new cluster is founded.
    fn assign(&mut self, p: f64) -> u32 {
        let mut id = 0u32;
        for c in &self.clusters {
            if (p - c.center).abs() <= self.sigma * c.center.max(EPS) {
                return id;
            }
            id += 1;
        }
        self.clusters.push(Cluster {
            center: p,
            epochs: 0,
            sum_insts: 0,
            sim_tbs: 0,
            abandoned: false,
        });
        self.outcome.clusters_discovered += 1;
        id
    }

    /// Estimated warp instructions of one skipped block.
    fn estimate_insts(&self, cluster: u32) -> u64 {
        if let Some(exact) = self.exact_insts {
            return exact;
        }
        let c = &self.clusters[cluster as usize];
        if let Some(avg) = c.sum_insts.checked_div(c.sim_tbs) {
            return avg;
        }
        self.global_sum_insts
            .checked_div(self.global_sim_tbs)
            .unwrap_or(0)
    }

    fn exit_region(&mut self, cycle: u64) {
        self.state = State::Outside;
        self.warm_ipcs.clear();
        self.recorder.record(cycle, EventKind::RegionExited);
    }

    fn destabilise(&mut self, cycle: u64, cluster: u32) {
        self.state = State::Outside;
        self.warm_ipcs.clear();
        self.run_cluster = None;
        self.run_len = 0;
        self.outcome.destabilisations += 1;
        self.recorder
            .record(cycle, EventKind::LiveDestabilised { cluster });
    }

    /// Classify the completed epoch `e` and run the state transitions it
    /// triggers.
    fn classify_epoch(&mut self, e: u32, cycle: u64) {
        let acc = self.epochs[e as usize];
        let cluster = if acc.sim_count == 0 {
            // Fully skipped epoch: nothing measurable; it inherits the
            // cluster we are fast-forwarding through. (`last_cluster` is
            // always set here — skipping requires an earlier classified
            // epoch — but classify an all-zero feature defensively.)
            match self.last_cluster {
                Some(c) => c,
                None => self.assign(0.0),
            }
        } else {
            self.assign(acc.sum_p / f64::from(acc.sim_count))
        };
        if acc.sim_count > 0 {
            let c = &mut self.clusters[cluster as usize];
            c.epochs += 1;
            let p = acc.sum_p / f64::from(acc.sim_count);
            c.center += (p - c.center) / f64::from(c.epochs);
            c.sum_insts += acc.sum_insts;
            c.sim_tbs += u64::from(acc.sim_count);
        }
        self.outcome.epochs_classified += 1;
        self.recorder
            .record(cycle, EventKind::LiveEpochDetected { epoch: e, cluster });
        self.last_cluster = Some(cluster);
        if self.run_cluster == Some(cluster) {
            self.run_len += 1;
        } else {
            self.run_cluster = Some(cluster);
            self.run_len = 1;
        }
        match self.state {
            State::Outside => {
                if self.run_len >= self.min_run && !self.clusters[cluster as usize].abandoned {
                    self.state = State::Warming(cluster);
                    self.warm_ipcs.clear();
                    self.outcome.regions_entered += 1;
                    self.recorder
                        .record(cycle, EventKind::RegionEntered { region: cluster });
                }
            }
            State::Warming(c) => {
                if cluster != c {
                    self.exit_region(cycle);
                }
            }
            State::FastForward { cluster: c, .. } => {
                // An epoch with real measurements landing in a different
                // cluster is as good a destabilisation signal as a stray
                // guard block.
                if acc.sim_count > 0 && cluster != c {
                    self.destabilise(cycle, c);
                }
            }
        }
    }

    /// One block of its epoch is accounted for (retired or skipped);
    /// classify any epochs this completes, in index order.
    fn epoch_done(&mut self, tb: TbId, cycle: u64, stats: Option<TbStats>) {
        let e = tb.0 / self.occupancy;
        let acc = &mut self.epochs[e as usize];
        acc.done += 1;
        if let Some(s) = stats {
            acc.sim_count += 1;
            acc.sum_p += s.stall_probability();
            acc.sum_insts += s.warp_insts;
            if self.block_invariant && self.exact_insts.is_none() {
                self.exact_insts = Some(s.warp_insts);
            }
            self.global_sum_insts += s.warp_insts;
            self.global_sim_tbs += 1;
        }
        while self.next_epoch < self.num_blocks.div_ceil(self.occupancy)
            && self.epochs[self.next_epoch as usize].done == self.epoch_size(self.next_epoch)
        {
            let e = self.next_epoch;
            self.next_epoch += 1;
            self.classify_epoch(e, cycle);
        }
    }
}

impl SamplingHook for LiveSampler<'_> {
    fn on_dispatch(&mut self, tb: TbId, cycle: u64, issued: u64) -> DispatchDecision {
        if let State::FastForward { cluster, ipc } = self.state {
            let guard = self
                .ff_dispatch_idx
                .is_multiple_of(u64::from(self.guard_period));
            self.ff_dispatch_idx += 1;
            if guard {
                self.guards.insert(tb.0);
                self.outcome.guard_tbs += 1;
                // Fall through: simulated like any other block.
            } else {
                let est = self.estimate_insts(cluster);
                self.outcome.skipped_tbs += 1;
                self.outcome.skipped_warp_insts += est;
                if ipc > 0.0 {
                    self.outcome.predicted_skipped_cycles += est as f64 / ipc;
                }
                self.recorder.record(
                    cycle,
                    EventKind::BlockSkipped {
                        tb: tb.0,
                        warp_insts: est,
                    },
                );
                self.epoch_done(tb, cycle, None);
                return DispatchDecision::Skip;
            }
        }
        if self.need_designation {
            self.designated = Some(tb.0);
            self.need_designation = false;
            // The unit's clock starts with its first designated TB only;
            // later designated TBs extend the same unit.
            if self.unit_tbs_retired == 0 {
                self.unit_start_cycle = cycle;
                self.unit_start_insts = issued;
            }
        }
        DispatchDecision::Simulate
    }

    fn on_retire(&mut self, tb: TbId, cycle: u64, issued: u64) {
        // The simulator always calls `on_retire_stats`; this path only
        // serves hand-driven hooks, with empty feature counters.
        self.on_retire_stats(tb, cycle, issued, TbStats::default());
    }

    fn on_retire_stats(&mut self, tb: TbId, cycle: u64, issued: u64, stats: TbStats) {
        if self.guards.remove(&tb.0) {
            if let State::FastForward { cluster, .. } = self.state {
                let center = self.clusters[cluster as usize].center;
                let p = stats.stall_probability();
                if (p - center).abs() > self.destab_tolerance * center.max(EPS) {
                    self.destabilise(cycle, cluster);
                }
            }
        }

        if self.designated == Some(tb.0) {
            // A designated TB retired; the next simulated dispatch takes
            // over. The unit closes after `unit_tb_span` such lifetimes.
            self.designated = None;
            self.need_designation = true;
            self.unit_tbs_retired += 1;
            if self.unit_tbs_retired >= self.unit_tb_span {
                self.unit_tbs_retired = 0;
                let cycles = cycle.saturating_sub(self.unit_start_cycle);
                let insts = issued.saturating_sub(self.unit_start_insts);
                if cycles > 0 && insts > 0 {
                    let unit_ipc = insts as f64 / cycles as f64;
                    self.outcome.units_observed += 1;
                    self.recorder
                        .record(cycle, EventKind::UnitClosed { ipc: unit_ipc });
                    if let State::Warming(c) = self.state {
                        self.warm_ipcs.push(unit_ipc);
                        // Same trailing-window convergence criterion as
                        // the two-phase RegionSampler: the last
                        // `warming_window` unit IPCs must agree pairwise
                        // within the band.
                        let n = self.warm_ipcs.len();
                        let mut converged = false;
                        if n >= self.warming_window {
                            let window = &self.warm_ipcs[n - self.warming_window..];
                            let lo = window.iter().cloned().fold(f64::INFINITY, f64::min);
                            let hi = window.iter().cloned().fold(0.0f64, f64::max);
                            if lo > 0.0 && (hi - lo) / lo < self.warming_threshold {
                                converged = true;
                                self.state = State::FastForward {
                                    cluster: c,
                                    ipc: unit_ipc,
                                };
                                self.ff_dispatch_idx = 0;
                                self.recorder.record(
                                    cycle,
                                    EventKind::LiveFastForward {
                                        cluster: c,
                                        ipc: unit_ipc,
                                    },
                                );
                            }
                        }
                        if !converged {
                            if let Some(budget) = self.warming_budget {
                                if n >= budget as usize {
                                    self.clusters[c as usize].abandoned = true;
                                    self.outcome.degraded_regions += 1;
                                    self.recorder.record(
                                        cycle,
                                        EventKind::DegradedMode {
                                            reason: DegradeReason::WarmingBudgetExceeded {
                                                region: c,
                                            },
                                        },
                                    );
                                    self.exit_region(cycle);
                                }
                            }
                        }
                    }
                }
            }
        }

        self.epoch_done(tb, cycle, Some(stats));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbpoint_emu::{profile_launch, TraceDeps};
    use tbpoint_ir::{AddrPattern, Kernel, KernelBuilder, LaunchId, LaunchSpec, Op, TripCount};
    use tbpoint_obs::CollectingRecorder;
    use tbpoint_sim::{simulate_launch, GpuConfig, NullSampling};

    fn homogeneous_kernel() -> Kernel {
        let mut b = KernelBuilder::new("homog", 31, 128);
        let body = b.block(&[
            Op::IAlu,
            Op::FAlu,
            Op::LdGlobal(AddrPattern::Coalesced {
                region: 0,
                stride: 4,
            }),
        ]);
        let n = b.loop_(TripCount::Const(30), body);
        b.finish(n)
    }

    fn spec(n: u32) -> LaunchSpec {
        LaunchSpec {
            launch_id: LaunchId(0),
            num_blocks: n,
            work_scale: 1.0,
        }
    }

    fn live_sampler_for<'a>(k: &Kernel, gpu: &GpuConfig, n: u32) -> LiveSampler<'a> {
        let deps = TraceDeps::of(k);
        LiveSampler::builder(n, gpu.system_occupancy(k))
            .block_invariant(!deps.per_thread && !deps.per_block)
            .build()
            .unwrap()
    }

    #[test]
    fn homogeneous_launch_gets_fast_forwarded_live() {
        let k = homogeneous_kernel();
        let gpu = GpuConfig::fermi();
        let sp = spec(3000);
        let mut sampler = live_sampler_for(&k, &gpu, 3000);
        let r = simulate_launch(&k, &sp, &gpu, &mut sampler, None);
        let out = sampler.outcome();
        assert!(out.skipped_tbs > 0, "fast-forward must engage: {out:?}");
        assert_eq!(r.skipped_tbs, out.skipped_tbs);
        assert!(out.epochs_classified > 0);
        assert_eq!(out.clusters_discovered, 1, "homogeneous -> one cluster");
        assert_eq!(out.destabilisations, 0);
        // Block-invariant kernel: skipped-inst accounting is exact.
        let profile = profile_launch(&k, &sp, 1);
        let total: u64 = profile.tbs.iter().map(|t| t.warp_insts).sum();
        assert_eq!(out.skipped_warp_insts + r.issued_warp_insts, total);
    }

    #[test]
    fn live_sampled_ipc_close_to_full_ipc() {
        let k = homogeneous_kernel();
        let gpu = GpuConfig::fermi();
        let sp = spec(3000);
        let full = simulate_launch(&k, &sp, &gpu, &mut NullSampling, None);
        let mut sampler = live_sampler_for(&k, &gpu, 3000);
        let sampled = simulate_launch(&k, &sp, &gpu, &mut sampler, None);
        let out = sampler.outcome();

        let full_ipc = full.ipc();
        let predicted_cycles = sampled.cycles as f64 + out.predicted_skipped_cycles;
        let total_insts = (sampled.issued_warp_insts + out.skipped_warp_insts) as f64;
        let predicted_ipc = total_insts / predicted_cycles;
        let err = ((predicted_ipc - full_ipc) / full_ipc).abs();
        assert!(
            err < 0.10,
            "live sampling error {:.2}% too high (pred {predicted_ipc:.3} vs full {full_ipc:.3})",
            err * 100.0
        );
        assert!(sampled.issued_warp_insts < full.issued_warp_insts / 2);
    }

    #[test]
    fn guard_blocks_are_simulated_during_fast_forward() {
        let k = homogeneous_kernel();
        let gpu = GpuConfig::fermi();
        let sp = spec(3000);
        let deps = TraceDeps::of(&k);
        let mut sampler = LiveSampler::builder(3000, gpu.system_occupancy(&k))
            .block_invariant(!deps.per_thread && !deps.per_block)
            .guard_period(4)
            .build()
            .unwrap();
        simulate_launch(&k, &sp, &gpu, &mut sampler, None);
        let out = sampler.outcome();
        assert!(out.guard_tbs > 0, "guards must run: {out:?}");
        assert!(out.skipped_tbs > out.guard_tbs, "guards stay the minority");
        // Guards of a homogeneous kernel never destabilise.
        assert_eq!(out.destabilisations, 0);
    }

    #[test]
    fn live_recorder_tells_a_consistent_story() {
        let k = homogeneous_kernel();
        let gpu = GpuConfig::fermi();
        let sp = spec(3000);
        let rec = CollectingRecorder::new();
        let deps = TraceDeps::of(&k);
        let mut sampler = LiveSampler::builder(3000, gpu.system_occupancy(&k))
            .block_invariant(!deps.per_thread && !deps.per_block)
            .recorder(&rec)
            .build()
            .unwrap();
        simulate_launch(&k, &sp, &gpu, &mut sampler, None);
        let out = sampler.outcome();
        let events = rec.events();
        let epochs = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::LiveEpochDetected { .. }))
            .count();
        let skips = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::BlockSkipped { .. }))
            .count();
        assert_eq!(epochs as u32, out.epochs_classified);
        assert_eq!(skips as u32, out.skipped_tbs);
        // Epoch detection precedes warming entry precedes fast-forward.
        let i_epoch = events
            .iter()
            .position(|e| matches!(e.kind, EventKind::LiveEpochDetected { .. }))
            .unwrap();
        let i_enter = events
            .iter()
            .position(|e| matches!(e.kind, EventKind::RegionEntered { .. }))
            .unwrap();
        let i_ff = events
            .iter()
            .position(|e| matches!(e.kind, EventKind::LiveFastForward { .. }))
            .expect("homogeneous launch must fast-forward live");
        assert!(i_epoch < i_enter && i_enter < i_ff);
    }

    #[test]
    fn warming_budget_abandons_unstable_clusters_live() {
        let k = homogeneous_kernel();
        let gpu = GpuConfig::fermi();
        let sp = spec(3000);
        let mut sampler = LiveSampler::builder(3000, gpu.system_occupancy(&k))
            .threshold(1e-300)
            .warming_budget(Some(crate::sampling::WARMING_WINDOW as u32))
            .build()
            .unwrap();
        let r = simulate_launch(&k, &sp, &gpu, &mut sampler, None);
        let out = sampler.outcome();
        assert!(out.degraded_regions > 0, "budget must trip: {out:?}");
        assert_eq!(out.skipped_tbs, 0, "abandoned cluster never skips");
        assert_eq!(r.skipped_tbs, 0);
    }

    #[test]
    fn builder_rejects_nonsense_live_settings() {
        for (build, field) in [
            (LiveSampler::builder(10, 0).build().err(), "occupancy"),
            (
                LiveSampler::builder(10, 8).sigma(f64::NAN).build().err(),
                "intra.sigma",
            ),
            (
                LiveSampler::builder(10, 8).min_run(0).build().err(),
                "live_min_run",
            ),
            (
                LiveSampler::builder(10, 8).guard_period(0).build().err(),
                "live_guard_period",
            ),
            (
                LiveSampler::builder(10, 8)
                    .destab_tolerance(-1.0)
                    .build()
                    .err(),
                "live_destab_tolerance",
            ),
            (
                LiveSampler::builder(10, 8).threshold(0.0).build().err(),
                "warming_threshold",
            ),
            (
                LiveSampler::builder(10, 8).unit_tb_span(0).build().err(),
                "unit_tb_span",
            ),
            (
                LiveSampler::builder(10, 8).warming_window(1).build().err(),
                "warming_window",
            ),
        ] {
            let err = build.expect("must be rejected");
            match err {
                TbError::InvalidConfig { field: f, .. } => assert_eq!(f, field),
                other => panic!("unexpected error {other:?}"),
            }
        }
    }
}

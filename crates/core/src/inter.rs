//! Inter-launch sampling (Section III of the paper).
//!
//! Kernel launches with homogeneous behaviour are clustered so only one
//! launch per cluster needs cycle-level simulation. The feature vector is
//! deliberately *not* a BBV: the paper argues GPGPU kernels have few basic
//! blocks whose counts correlate poorly with performance, while these four
//! features track the actual sources of IPC variation (size, control-flow
//! divergence, memory divergence, thread-block interleaving).

use crate::error::{invalid, TbError};
use serde::{Deserialize, Serialize};
use tbpoint_cluster::{
    hierarchical_cluster, kmeans_best_bic, normalize_by_mean, Clustering, Linkage,
};
use tbpoint_emu::RunProfile;

/// Which clustering algorithm groups the launches.
///
/// The paper argues for hierarchical clustering (the σ threshold sets the
/// cluster count automatically); the k-means+BIC variant exists for the
/// design-choice ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InterAlgo {
    /// Complete-linkage hierarchical clustering with distance threshold σ.
    Hierarchical,
    /// k-means with BIC model selection (SimPoint's approach), searching
    /// `k = 1..=max_k`.
    KMeansBic {
        /// Largest cluster count considered.
        max_k: usize,
    },
}

/// Inter-launch clustering parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterConfig {
    /// Distance threshold σ of the hierarchical clustering (paper: 0.1).
    pub sigma: f64,
    /// Clustering algorithm (paper: hierarchical).
    pub algo: InterAlgo,
    /// Append the launch's normalised BBV to the feature vector — the
    /// extension the paper's footnote 2 leaves for future work ("The BBV
    /// can be added as another feature for improving accuracy with the
    /// cost of increased total sample size"). Off by default (the
    /// paper's configuration).
    pub use_bbv: bool,
}

impl Default for InterConfig {
    fn default() -> Self {
        InterConfig {
            sigma: 0.1,
            algo: InterAlgo::Hierarchical,
            use_bbv: false,
        }
    }
}

impl InterConfig {
    /// Reject values clustering cannot run with.
    ///
    /// # Errors
    ///
    /// [`TbError::InvalidConfig`] when σ is non-finite or non-positive,
    /// or the k-means variant searches zero cluster counts.
    pub fn validate(&self) -> Result<(), TbError> {
        if !self.sigma.is_finite() || self.sigma <= 0.0 {
            return Err(invalid(
                "inter.sigma",
                format!("must be finite and positive (got {})", self.sigma),
            ));
        }
        if let InterAlgo::KMeansBic { max_k } = self.algo {
            if max_k == 0 {
                return Err(invalid("inter.algo.max_k", "must be at least 1 (got 0)"));
            }
        }
        Ok(())
    }
}

/// Result of inter-launch sampling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterResult {
    /// Cluster id per launch (dense).
    pub clustering: Clustering,
    /// Per cluster, the index of the representative launch (the
    /// simulation point): the member closest to the cluster centroid.
    pub representatives: Vec<usize>,
    /// The normalised feature vectors that were clustered (Eq. 2).
    pub features: Vec<Vec<f64>>,
}

impl InterResult {
    /// Number of launches that must be simulated.
    pub fn num_simulated(&self) -> usize {
        self.representatives.len()
    }

    /// The representative launch index for launch `i`'s cluster.
    pub fn representative_of(&self, i: usize) -> usize {
        self.representatives[self.clustering.assignments[i]]
    }

    /// Is launch `i` a simulation point?
    pub fn is_representative(&self, i: usize) -> bool {
        self.representative_of(i) == i
    }
}

/// Cluster the launches of `profile` per Eq. 2 and pick representatives.
pub fn inter_launch_sample(profile: &RunProfile, cfg: &InterConfig) -> InterResult {
    let raw: Vec<Vec<f64>> = profile
        .launches
        .iter()
        .map(|l| {
            let mut point = l.inter_features().to_point();
            if cfg.use_bbv {
                // Footnote-2 extension: BBV entries normalised by the
                // launch's instruction count (Eq. 1's convention), so
                // they describe the code *mix* independent of size.
                let total = l.warp_insts().max(1) as f64;
                point.extend(l.bbv().iter().map(|&c| c as f64 / total));
            }
            point
        })
        .collect();
    let features = normalize_by_mean(&raw);
    let clustering = match cfg.algo {
        InterAlgo::Hierarchical => hierarchical_cluster(&features, cfg.sigma, Linkage::Complete),
        InterAlgo::KMeansBic { max_k } => kmeans_best_bic(&features, max_k, 0xBEEF, 0.9).clustering,
    };
    let representatives = clustering.representatives(&features);
    InterResult {
        clustering,
        representatives,
        features,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbpoint_emu::profile_run;
    use tbpoint_ir::{AddrPattern, KernelBuilder, KernelRun, LaunchId, LaunchSpec, Op, TripCount};

    /// A kernel whose launches are exact functions of (num_blocks,
    /// work_scale): constant trip counts, so launches with equal
    /// parameters produce identical feature vectors.
    fn run_with_launches(launches: &[(u32, f64)]) -> KernelRun {
        let mut b = KernelBuilder::new("k", 17, 64);
        let body = b.block(&[
            Op::IAlu,
            Op::LdGlobal(AddrPattern::Coalesced {
                region: 0,
                stride: 4,
            }),
        ]);
        let n = b.loop_(TripCount::Const(10), body);
        let kernel = b.finish(n);
        KernelRun {
            kernel,
            launches: launches
                .iter()
                .enumerate()
                .map(|(i, &(nb, ws))| LaunchSpec {
                    launch_id: LaunchId(i as u32),
                    num_blocks: nb,
                    work_scale: ws,
                })
                .collect(),
        }
    }

    #[test]
    fn homogeneous_launches_need_one_simulation() {
        let run = run_with_launches(&[(40, 1.0); 12]);
        let profile = profile_run(&run, 2);
        let r = inter_launch_sample(&profile, &InterConfig::default());
        assert_eq!(
            r.num_simulated(),
            1,
            "identical launches must share a cluster"
        );
        assert!(r.is_representative(r.representatives[0]));
    }

    #[test]
    fn distinct_launch_sizes_split_clusters() {
        // Launches alternate between tiny and huge grids (bfs-like
        // frontier growth): at least two clusters expected.
        let run = run_with_launches(&[
            (4, 0.5),
            (200, 4.0),
            (4, 0.5),
            (200, 4.0),
            (4, 0.5),
            (200, 4.0),
        ]);
        let profile = profile_run(&run, 2);
        let r = inter_launch_sample(&profile, &InterConfig::default());
        assert!(r.num_simulated() >= 2, "got {} clusters", r.num_simulated());
        // The alternating launches must not share a cluster.
        let a = r.clustering.assignments[0];
        let b = r.clustering.assignments[1];
        assert_ne!(a, b);
        // And the pattern must repeat.
        assert_eq!(r.clustering.assignments[0], r.clustering.assignments[2]);
        assert_eq!(r.clustering.assignments[1], r.clustering.assignments[3]);
    }

    #[test]
    fn representative_of_maps_members_to_their_rep() {
        let run = run_with_launches(&[(40, 1.0), (40, 1.0), (400, 8.0)]);
        let profile = profile_run(&run, 1);
        let r = inter_launch_sample(&profile, &InterConfig::default());
        // Launches 0 and 1 share a representative; launch 2 is its own.
        assert_eq!(r.representative_of(0), r.representative_of(1));
        assert_eq!(r.representative_of(2), 2);
    }

    #[test]
    fn higher_sigma_means_fewer_clusters() {
        let run = run_with_launches(&[
            (10, 1.0),
            (14, 1.2),
            (18, 1.5),
            (24, 1.9),
            (30, 2.4),
            (40, 3.0),
        ]);
        let profile = profile_run(&run, 1);
        let tight = inter_launch_sample(
            &profile,
            &InterConfig {
                sigma: 0.02,
                ..Default::default()
            },
        );
        let loose = inter_launch_sample(
            &profile,
            &InterConfig {
                sigma: 10.0,
                ..Default::default()
            },
        );
        assert!(tight.num_simulated() >= loose.num_simulated());
        assert_eq!(loose.num_simulated(), 1);
    }

    #[test]
    fn bbv_extension_widens_the_feature_vector() {
        let run = run_with_launches(&[(40, 1.0), (40, 1.0), (40, 2.0)]);
        let profile = profile_run(&run, 1);
        let base = inter_launch_sample(&profile, &InterConfig::default());
        let ext = inter_launch_sample(
            &profile,
            &InterConfig {
                use_bbv: true,
                ..Default::default()
            },
        );
        let bbs = run.kernel.num_basic_blocks as usize;
        assert_eq!(ext.features[0].len(), base.features[0].len() + bbs);
        // Identical launches still merge with the extension on.
        assert_eq!(ext.clustering.assignments[0], ext.clustering.assignments[1]);
        // And the footnote's warning holds: the extension can only split
        // clusters further, never merge more.
        assert!(ext.num_simulated() >= base.num_simulated());
    }

    #[test]
    fn features_are_mean_normalised() {
        let run = run_with_launches(&[(10, 1.0), (30, 1.0)]);
        let profile = profile_run(&run, 1);
        let r = inter_launch_sample(&profile, &InterConfig::default());
        // Each dimension averages to 1 across launches (or 0 if the raw
        // dimension was all-zero, e.g. CoV of identical TBs).
        for d in 0..4 {
            let avg: f64 = r.features.iter().map(|f| f[d]).sum::<f64>() / r.features.len() as f64;
            assert!(
                (avg - 1.0).abs() < 1e-9 || avg.abs() < 1e-9,
                "dimension {d} averages to {avg}"
            );
        }
    }
}

//! The end-to-end TBPoint pipeline and IPC prediction (Table IV).
//!
//! Given a one-time profile of every launch:
//!
//! 1. inter-launch clustering picks one representative launch per cluster;
//! 2. each representative is simulated under homogeneous-region sampling
//!    (its own intra-launch fast-forwarding);
//! 3. a representative's predicted launch time is `simulated cycles +
//!    skipped insts / unit IPC`; a non-representative's is
//!    `its insts / representative's predicted IPC`;
//! 4. the overall IPC prediction is `total insts / total predicted
//!    cycles`, compared against the Full simulation for the Fig. 9
//!    sampling error.
//!
//! The same accounting yields the Fig. 10 *total sample size* (simulated
//! insts / total insts) and the Fig. 11 breakdown of skipped instructions
//! between the two techniques. Inter- and intra-launch sampling are
//! orthogonal (the paper's Table IV note); the config can disable either.

use crate::inter::{inter_launch_sample, InterConfig};
use crate::intra::{build_epochs, identify_regions, IntraConfig};
use crate::sampling::RegionSampler;
use serde::{Deserialize, Serialize};
use tbpoint_cluster::Clustering;
use tbpoint_emu::RunProfile;
use tbpoint_ir::KernelRun;
use tbpoint_sim::{simulate_launch, GpuConfig, NullSampling};

/// Full TBPoint configuration (paper defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TbpointConfig {
    /// Inter-launch clustering (σ = 0.1).
    pub inter: InterConfig,
    /// Intra-launch clustering (σ = 0.2, VF = 0.3).
    pub intra: IntraConfig,
    /// Warming convergence threshold (10%).
    pub warming_threshold: f64,
    /// Designated-TB lifetimes per sampling unit (scale compensation; see
    /// `sampling::DEFAULT_UNIT_TB_SPAN`).
    pub unit_tb_span: u32,
    /// Trailing units that must agree before fast-forwarding (the paper
    /// compares 2; see `sampling::WARMING_WINDOW`).
    pub warming_window: usize,
    /// Enable inter-launch sampling.
    pub inter_enabled: bool,
    /// Enable intra-launch sampling.
    pub intra_enabled: bool,
    /// Worker threads for simulating independent representative launches
    /// (1 = serial; results are identical at any count).
    pub sim_threads: usize,
}

impl Default for TbpointConfig {
    fn default() -> Self {
        TbpointConfig {
            inter: InterConfig::default(),
            intra: IntraConfig::default(),
            warming_threshold: 0.10,
            unit_tb_span: crate::sampling::DEFAULT_UNIT_TB_SPAN,
            warming_window: crate::sampling::WARMING_WINDOW,
            inter_enabled: true,
            intra_enabled: true,
            sim_threads: 1,
        }
    }
}

/// Where the instruction savings came from (Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SavingsBreakdown {
    /// Warp instructions skipped because their whole launch was predicted
    /// from a cluster representative.
    pub inter_skipped_warp_insts: u64,
    /// Warp instructions skipped by fast-forwarding inside simulated
    /// launches.
    pub intra_skipped_warp_insts: u64,
}

impl SavingsBreakdown {
    /// Total skipped instructions.
    pub fn total_skipped(&self) -> u64 {
        self.inter_skipped_warp_insts + self.intra_skipped_warp_insts
    }

    /// Fraction of the savings attributable to inter-launch sampling
    /// (the Fig. 11 stacked-bar split). Zero when nothing was skipped.
    pub fn inter_fraction(&self) -> f64 {
        let t = self.total_skipped();
        if t == 0 {
            0.0
        } else {
            self.inter_skipped_warp_insts as f64 / t as f64
        }
    }
}

/// Everything TBPoint produces for one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TbpointResult {
    /// Benchmark name.
    pub kernel_name: String,
    /// Predicted overall IPC.
    pub predicted_ipc: f64,
    /// Warp instructions actually simulated.
    pub simulated_warp_insts: u64,
    /// Total warp instructions in the workload.
    pub total_warp_insts: u64,
    /// Predicted total cycles.
    pub predicted_total_cycles: f64,
    /// Savings attribution (Fig. 11).
    pub breakdown: SavingsBreakdown,
    /// Launches simulated / total.
    pub num_simulated_launches: usize,
    /// Total launches.
    pub num_launches: usize,
    /// Per-launch predicted cycles (launch order).
    pub per_launch_predicted_cycles: Vec<f64>,
    /// The inter-launch clustering (diagnostics).
    pub inter_clustering: Clustering,
}

impl TbpointResult {
    /// Total sample size (Fig. 10): simulated / total warp instructions.
    pub fn sample_size(&self) -> f64 {
        if self.total_warp_insts == 0 {
            0.0
        } else {
            self.simulated_warp_insts as f64 / self.total_warp_insts as f64
        }
    }

    /// Absolute sampling error in percent against a reference IPC.
    pub fn error_vs(&self, full_ipc: f64) -> f64 {
        tbpoint_stats::abs_pct_error(self.predicted_ipc, full_ipc)
    }
}

/// Run the full TBPoint pipeline for one benchmark.
///
/// `profile` must be the one-time profile of `run` (from
/// [`tbpoint_emu::profile_run`]); `gpu` is the simulated configuration —
/// changing it only re-runs clustering and simulation, never profiling.
pub fn run_tbpoint(
    run: &KernelRun,
    profile: &RunProfile,
    cfg: &TbpointConfig,
    gpu: &GpuConfig,
) -> TbpointResult {
    assert_eq!(
        run.launches.len(),
        profile.launches.len(),
        "profile does not match the run"
    );
    let n_launches = run.launches.len();

    // Step 1: pick the launches to simulate.
    let inter = if cfg.inter_enabled {
        inter_launch_sample(profile, &cfg.inter)
    } else {
        // Every launch is its own cluster: all are simulated.
        crate::inter::InterResult {
            clustering: Clustering::from_assignments(&(0..n_launches).collect::<Vec<_>>()),
            representatives: (0..n_launches).collect(),
            features: vec![],
        }
    };

    let occupancy = gpu.system_occupancy(&run.kernel);

    // Step 2: simulate each representative with intra-launch sampling.
    // Representatives are independent launches, so they fan out over
    // scoped worker threads (each simulation is internally
    // single-threaded and deterministic; results land in per-rep slots,
    // so the outcome is identical at any worker count).
    let simulate_rep = |rep: usize| -> (u64, u64, f64, f64) {
        let spec = &run.launches[rep];
        let launch_profile = &profile.launches[rep];
        let launch_insts: u64 = launch_profile.warp_insts();
        let (sim_cycles, issued, skipped_insts, predicted_skip_cycles) = if cfg.intra_enabled {
            let epochs = build_epochs(launch_profile, occupancy);
            let table = identify_regions(&epochs, &cfg.intra);
            let mut sampler = RegionSampler::with_options(
                &table,
                launch_profile,
                cfg.warming_threshold,
                cfg.unit_tb_span,
                cfg.warming_window,
            );
            let r = simulate_launch(&run.kernel, spec, gpu, &mut sampler, None);
            let o = sampler.outcome();
            (
                r.cycles,
                r.issued_warp_insts,
                o.skipped_warp_insts,
                o.predicted_skipped_cycles,
            )
        } else {
            let r = simulate_launch(&run.kernel, spec, gpu, &mut NullSampling, None);
            (r.cycles, r.issued_warp_insts, 0, 0.0)
        };
        let predicted_cycles = sim_cycles as f64 + predicted_skip_cycles;
        let predicted_ipc = if predicted_cycles > 0.0 {
            launch_insts as f64 / predicted_cycles
        } else {
            0.0
        };
        (issued, skipped_insts, predicted_cycles, predicted_ipc)
    };

    let workers = cfg
        .sim_threads
        .max(1)
        .min(inter.representatives.len().max(1));
    let mut rep_results: Vec<Option<(u64, u64, f64, f64)>> =
        vec![None; inter.representatives.len()];
    if workers <= 1 {
        for (slot, &rep) in rep_results.iter_mut().zip(&inter.representatives) {
            *slot = Some(simulate_rep(rep));
        }
    } else {
        let next = std::sync::atomic::AtomicUsize::new(0);
        let slots = std::sync::Mutex::new(&mut rep_results);
        let reps = &inter.representatives;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= reps.len() {
                        break;
                    }
                    let r = simulate_rep(reps[i]);
                    // A poisoned lock means a sibling worker panicked while
                    // holding it; the slot table is still well-formed (each
                    // worker writes disjoint indices), so keep going and let
                    // the scope propagate the original panic.
                    slots
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)[i] = Some(r);
                });
            }
        });
    }

    // rep_outcome[launch] = Some((predicted_cycles, predicted_ipc)).
    let mut rep_outcome: Vec<Option<(f64, f64)>> = vec![None; n_launches];
    let mut simulated_warp_insts = 0u64;
    let mut intra_skipped = 0u64;
    for (&rep, result) in inter.representatives.iter().zip(&rep_results) {
        // Every slot is written exactly once (the scope joins all workers
        // and worker panics propagate), so an empty slot is unreachable;
        // skipping it degrades the estimate instead of aborting.
        let Some((issued, skipped_insts, predicted_cycles, predicted_ipc)) = *result else {
            continue;
        };
        simulated_warp_insts += issued;
        intra_skipped += skipped_insts;
        rep_outcome[rep] = Some((predicted_cycles, predicted_ipc));
    }

    // Steps 3-4: extend representatives to their clusters and aggregate.
    let mut per_launch_predicted_cycles = Vec::with_capacity(n_launches);
    let mut inter_skipped = 0u64;
    let mut total_insts = 0u64;
    for i in 0..n_launches {
        let launch_insts = profile.launches[i].warp_insts();
        total_insts += launch_insts;
        let rep = inter.representatives[inter.clustering.assignments[i]];
        // Same unreachable-by-construction argument as above.
        let (rep_cycles, rep_ipc) = rep_outcome[rep].unwrap_or((0.0, 0.0));
        if i == rep {
            per_launch_predicted_cycles.push(rep_cycles);
        } else {
            inter_skipped += launch_insts;
            let cycles = if rep_ipc > 0.0 {
                launch_insts as f64 / rep_ipc
            } else {
                rep_cycles
            };
            per_launch_predicted_cycles.push(cycles);
        }
    }
    let predicted_total_cycles: f64 = per_launch_predicted_cycles.iter().sum();
    let predicted_ipc = if predicted_total_cycles > 0.0 {
        total_insts as f64 / predicted_total_cycles
    } else {
        0.0
    };

    TbpointResult {
        kernel_name: run.kernel.name.clone(),
        predicted_ipc,
        simulated_warp_insts,
        total_warp_insts: total_insts,
        predicted_total_cycles,
        breakdown: SavingsBreakdown {
            inter_skipped_warp_insts: inter_skipped,
            intra_skipped_warp_insts: intra_skipped,
        },
        num_simulated_launches: inter.representatives.len(),
        num_launches: n_launches,
        per_launch_predicted_cycles,
        inter_clustering: inter.clustering,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbpoint_emu::profile_run;
    use tbpoint_ir::{AddrPattern, KernelBuilder, KernelRun, LaunchId, LaunchSpec, Op, TripCount};
    use tbpoint_sim::simulate_run;

    fn homogeneous_run(n_launches: u32, blocks_per_launch: u32) -> KernelRun {
        let mut b = KernelBuilder::new("homog", 31, 128);
        let body = b.block(&[
            Op::IAlu,
            Op::FAlu,
            Op::LdGlobal(AddrPattern::Coalesced {
                region: 0,
                stride: 4,
            }),
        ]);
        let n = b.loop_(TripCount::Const(30), body);
        let kernel = b.finish(n);
        KernelRun {
            kernel,
            launches: (0..n_launches)
                .map(|i| LaunchSpec {
                    launch_id: LaunchId(i),
                    num_blocks: blocks_per_launch,
                    work_scale: 1.0,
                })
                .collect(),
        }
    }

    #[test]
    fn tbpoint_on_homogeneous_run_is_accurate_and_cheap() {
        let run = homogeneous_run(6, 1800);
        let gpu = GpuConfig::fermi();
        let profile = profile_run(&run, 2);
        let full = simulate_run(&run, &gpu, &mut NullSampling, None);

        let result = run_tbpoint(&run, &profile, &TbpointConfig::default(), &gpu);
        assert_eq!(
            result.num_simulated_launches, 1,
            "6 identical launches -> 1 simulated"
        );
        let err = result.error_vs(full.overall_ipc());
        assert!(err < 10.0, "error {err:.2}% too high");
        assert!(
            result.sample_size() < 0.25,
            "sample size {:.3} should be small",
            result.sample_size()
        );
        // Savings from both techniques.
        assert!(result.breakdown.inter_skipped_warp_insts > 0);
        assert!(result.breakdown.intra_skipped_warp_insts > 0);
        // Conservation: simulated + skipped = total.
        assert_eq!(
            result.simulated_warp_insts + result.breakdown.total_skipped(),
            result.total_warp_insts
        );
    }

    #[test]
    fn disabling_inter_simulates_every_launch() {
        let run = homogeneous_run(4, 200);
        let gpu = GpuConfig::fermi();
        let profile = profile_run(&run, 2);
        let cfg = TbpointConfig {
            inter_enabled: false,
            ..Default::default()
        };
        let result = run_tbpoint(&run, &profile, &cfg, &gpu);
        assert_eq!(result.num_simulated_launches, 4);
        assert_eq!(result.breakdown.inter_skipped_warp_insts, 0);
    }

    #[test]
    fn disabling_intra_runs_representatives_in_full() {
        let run = homogeneous_run(4, 200);
        let gpu = GpuConfig::fermi();
        let profile = profile_run(&run, 2);
        let cfg = TbpointConfig {
            intra_enabled: false,
            ..Default::default()
        };
        let result = run_tbpoint(&run, &profile, &cfg, &gpu);
        assert_eq!(result.breakdown.intra_skipped_warp_insts, 0);
        assert_eq!(result.num_simulated_launches, 1);
        // The one simulated launch runs in full.
        let one_launch: u64 = profile.launches[0].warp_insts();
        assert_eq!(result.simulated_warp_insts, one_launch);
    }

    #[test]
    fn disabling_both_is_full_simulation() {
        let run = homogeneous_run(3, 100);
        let gpu = GpuConfig::fermi();
        let profile = profile_run(&run, 2);
        let cfg = TbpointConfig {
            inter_enabled: false,
            intra_enabled: false,
            ..Default::default()
        };
        let result = run_tbpoint(&run, &profile, &cfg, &gpu);
        assert_eq!(result.sample_size(), 1.0);
        let full = simulate_run(&run, &gpu, &mut NullSampling, None);
        assert!(result.error_vs(full.overall_ipc()) < 1e-9);
    }

    #[test]
    fn breakdown_fraction_math() {
        let b = SavingsBreakdown {
            inter_skipped_warp_insts: 30,
            intra_skipped_warp_insts: 10,
        };
        assert!((b.inter_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(SavingsBreakdown::default().inter_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "profile does not match")]
    fn mismatched_profile_rejected() {
        let run = homogeneous_run(3, 10);
        let short_run = homogeneous_run(2, 10);
        let profile = profile_run(&short_run, 1);
        run_tbpoint(
            &run,
            &profile,
            &TbpointConfig::default(),
            &GpuConfig::fermi(),
        );
    }
}

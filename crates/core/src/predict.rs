//! The end-to-end TBPoint pipeline and IPC prediction (Table IV).
//!
//! Given a one-time profile of every launch:
//!
//! 1. inter-launch clustering picks one representative launch per cluster;
//! 2. each representative is simulated under homogeneous-region sampling
//!    (its own intra-launch fast-forwarding);
//! 3. a representative's predicted launch time is `simulated cycles +
//!    skipped insts / unit IPC`; a non-representative's is
//!    `its insts / representative's predicted IPC`;
//! 4. the overall IPC prediction is `total insts / total predicted
//!    cycles`, compared against the Full simulation for the Fig. 9
//!    sampling error.
//!
//! The same accounting yields the Fig. 10 *total sample size* (simulated
//! insts / total insts) and the Fig. 11 breakdown of skipped instructions
//! between the two techniques. Inter- and intra-launch sampling are
//! orthogonal (the paper's Table IV note); the config can disable either.
//!
//! [`run_tbpoint`] validates its configuration and returns
//! `Result<TbpointResult, TbError>`; [`run_tbpoint_traced`] additionally
//! captures a per-simulated-launch [`TraceBundle`] of observability
//! events without perturbing the result.

use crate::error::{invalid, TbError};
use crate::inter::{inter_launch_sample, InterConfig, InterResult};
use crate::intra::{build_epochs, identify_regions, IntraConfig};
use crate::sampling::live::LiveSampler;
use crate::sampling::RegionSampler;
use serde::{Deserialize, Serialize};
use tbpoint_cluster::Clustering;
use tbpoint_emu::LaunchProfile;
use tbpoint_emu::RunProfile;
use tbpoint_emu::TraceDeps;
use tbpoint_ir::KernelRun;
use tbpoint_ir::LaunchSpec;
use tbpoint_obs::{
    CollectingRecorder, DegradeReason, EventKind, NullRecorder, Recorder, Span, TraceBundle,
};
use tbpoint_pool::{run_indexed, ExecPlan};
use tbpoint_sim::{
    simulate_launch_obs_with_options, CycleBudgetHook, GpuConfig, NullSampling, SamplingHook,
    SimOptions,
};

/// Which pipeline produces the prediction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplingMode {
    /// The paper's two-phase pipeline: profile every launch first, then
    /// sample the timing simulation against the profile.
    #[default]
    TwoPhase,
    /// Live single-pass sampling: no profiling pass; epochs and clusters
    /// are detected online from the simulator's retire-time feature
    /// stream (see [`crate::sampling::live::LiveSampler`]).
    Live,
}

/// Full TBPoint configuration (paper defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TbpointConfig {
    /// Inter-launch clustering (σ = 0.1).
    pub inter: InterConfig,
    /// Intra-launch clustering (σ = 0.2, VF = 0.3).
    pub intra: IntraConfig,
    /// Warming convergence threshold (10%).
    pub warming_threshold: f64,
    /// Designated-TB lifetimes per sampling unit (scale compensation; see
    /// `sampling::DEFAULT_UNIT_TB_SPAN`).
    pub unit_tb_span: u32,
    /// Trailing units that must agree before fast-forwarding (the paper
    /// compares 2; see `sampling::WARMING_WINDOW`).
    pub warming_window: usize,
    /// Enable inter-launch sampling.
    pub inter_enabled: bool,
    /// Enable intra-launch sampling.
    pub intra_enabled: bool,
    /// Bound on warming units per region before the sampler abandons the
    /// region and degrades to detailed simulation (`None` = warm
    /// indefinitely, the paper's behaviour). Must be at least
    /// `warming_window` when set.
    pub warming_budget: Option<u32>,
    /// Per-launch simulated-cycle watchdog: a representative still
    /// dispatching blocks past this many cycles is drained and reported
    /// as [`TbError::BudgetExceeded`] (`None` = no watchdog).
    pub cycle_budget: Option<u64>,
    /// Which pipeline to run ([`SamplingMode::TwoPhase`] by default).
    /// The [`run_tbpoint`] family ignores this field — callers branch on
    /// it to pick between [`run_tbpoint`] and [`run_tbpoint_live`].
    pub mode: SamplingMode,
    /// Live mode: consecutive same-cluster epochs required before
    /// warming starts. Must be at least 1.
    pub live_min_run: u32,
    /// Live mode: during fast-forward, every `live_guard_period`-th
    /// dispatched block is simulated as a guard (destabilisation probe)
    /// instead of skipped. Must be at least 1.
    pub live_guard_period: u32,
    /// Live mode: relative deviation of a guard block's stall
    /// probability from its cluster centre that destabilises the
    /// fast-forward. Must be finite and positive.
    pub live_destab_tolerance: f64,
}

impl Default for TbpointConfig {
    fn default() -> Self {
        TbpointConfig {
            inter: InterConfig::default(),
            intra: IntraConfig::default(),
            warming_threshold: 0.10,
            unit_tb_span: crate::sampling::DEFAULT_UNIT_TB_SPAN,
            warming_window: crate::sampling::WARMING_WINDOW,
            inter_enabled: true,
            intra_enabled: true,
            warming_budget: None,
            cycle_budget: None,
            mode: SamplingMode::TwoPhase,
            live_min_run: 2,
            live_guard_period: 8,
            live_destab_tolerance: 0.5,
        }
    }
}

impl TbpointConfig {
    /// Check every field the pipeline depends on, naming the first
    /// offender. Called by [`run_tbpoint`]; call it yourself to validate
    /// user input early.
    ///
    /// # Errors
    ///
    /// [`TbError::InvalidConfig`] when a clustering σ is non-finite or
    /// non-positive, the variation factor is negative, the warming
    /// threshold is non-finite or non-positive, `unit_tb_span` is zero,
    /// or `warming_window` is below 2. Parallelism lives outside this
    /// config — see [`tbpoint_pool::ExecPlan`] and [`run_tbpoint_plan`]
    /// — because results are bit-identical at any worker count, so the
    /// worker count is an execution concern, not a result-affecting one.
    pub fn validate(&self) -> Result<(), TbError> {
        self.inter.validate()?;
        self.intra.validate()?;
        if !self.warming_threshold.is_finite() || self.warming_threshold <= 0.0 {
            return Err(invalid(
                "warming_threshold",
                format!(
                    "must be finite and positive (got {})",
                    self.warming_threshold
                ),
            ));
        }
        if self.unit_tb_span == 0 {
            return Err(invalid("unit_tb_span", "must be at least 1 (got 0)"));
        }
        if self.warming_window < 2 {
            return Err(invalid(
                "warming_window",
                format!(
                    "needs at least 2 units to compare (got {})",
                    self.warming_window
                ),
            ));
        }
        if let Some(budget) = self.warming_budget {
            if (budget as usize) < self.warming_window {
                return Err(invalid(
                    "warming_budget",
                    format!(
                        "must allow at least warming_window = {} units (got {budget})",
                        self.warming_window
                    ),
                ));
            }
        }
        if self.cycle_budget == Some(0) {
            return Err(invalid("cycle_budget", "must be at least 1 cycle (got 0)"));
        }
        if self.live_min_run == 0 {
            return Err(invalid("live_min_run", "must be at least 1 (got 0)"));
        }
        if self.live_guard_period == 0 {
            return Err(invalid("live_guard_period", "must be at least 1 (got 0)"));
        }
        if !self.live_destab_tolerance.is_finite() || self.live_destab_tolerance <= 0.0 {
            return Err(invalid(
                "live_destab_tolerance",
                format!(
                    "must be finite and positive (got {})",
                    self.live_destab_tolerance
                ),
            ));
        }
        Ok(())
    }
}

/// Where the instruction savings came from (Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SavingsBreakdown {
    /// Warp instructions skipped because their whole launch was predicted
    /// from a cluster representative.
    pub inter_skipped_warp_insts: u64,
    /// Warp instructions skipped by fast-forwarding inside simulated
    /// launches.
    pub intra_skipped_warp_insts: u64,
}

impl SavingsBreakdown {
    /// Total skipped instructions.
    pub fn total_skipped(&self) -> u64 {
        self.inter_skipped_warp_insts + self.intra_skipped_warp_insts
    }

    /// Fraction of the savings attributable to inter-launch sampling
    /// (the Fig. 11 stacked-bar split). Zero when nothing was skipped.
    pub fn inter_fraction(&self) -> f64 {
        let t = self.total_skipped();
        if t == 0 {
            0.0
        } else {
            self.inter_skipped_warp_insts as f64 / t as f64
        }
    }
}

/// Everything TBPoint produces for one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TbpointResult {
    /// Benchmark name.
    pub kernel_name: String,
    /// Predicted overall IPC.
    pub predicted_ipc: f64,
    /// Warp instructions actually simulated.
    pub simulated_warp_insts: u64,
    /// Total warp instructions in the workload.
    pub total_warp_insts: u64,
    /// Predicted total cycles.
    pub predicted_total_cycles: f64,
    /// Savings attribution (Fig. 11).
    pub breakdown: SavingsBreakdown,
    /// Launches simulated / total.
    pub num_simulated_launches: usize,
    /// Total launches.
    pub num_launches: usize,
    /// Per-launch predicted cycles (launch order).
    pub per_launch_predicted_cycles: Vec<f64>,
    /// The inter-launch clustering (diagnostics).
    pub inter_clustering: Clustering,
    /// Simulated launches that fell back to detailed simulation —
    /// because their profile failed validation or a region's warming
    /// budget ran out. Each fallback also emits a `DegradedMode` event.
    pub degraded_launches: usize,
}

impl TbpointResult {
    /// Total sample size (Fig. 10): simulated / total warp instructions.
    pub fn sample_size(&self) -> f64 {
        if self.total_warp_insts == 0 {
            0.0
        } else {
            self.simulated_warp_insts as f64 / self.total_warp_insts as f64
        }
    }

    /// Absolute sampling error in percent against a reference IPC.
    pub fn error_vs(&self, full_ipc: f64) -> f64 {
        tbpoint_stats::abs_pct_error(self.predicted_ipc, full_ipc)
    }

    /// Fraction of simulated launches that degraded to detailed
    /// simulation (0.0 = everything sampled as planned, 1.0 = every
    /// simulated launch fell back). Zero when nothing was simulated.
    pub fn degradation_ratio(&self) -> f64 {
        if self.num_simulated_launches == 0 {
            0.0
        } else {
            self.degraded_launches as f64 / self.num_simulated_launches as f64
        }
    }
}

/// The observability trace of one simulated representative launch,
/// returned by [`run_tbpoint_traced`].
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchTrace {
    /// Index of the launch within the run.
    pub launch: usize,
    /// Events, counters and gauges recorded while simulating it.
    pub trace: TraceBundle,
}

/// What simulating one representative produced.
#[derive(Debug, Clone, Copy)]
struct RepSim {
    issued: u64,
    skipped_insts: u64,
    sim_cycles: u64,
    predicted_cycles: f64,
    predicted_ipc: f64,
    degraded: bool,
}

fn check_profile(run: &KernelRun, profile: &RunProfile) -> Result<(), TbError> {
    if run.launches.len() == profile.launches.len() {
        Ok(())
    } else {
        Err(TbError::ProfileMismatch {
            run_launches: run.launches.len(),
            profile_launches: profile.launches.len(),
        })
    }
}

/// Step 1: pick the launches to simulate.
fn pick_launches(profile: &RunProfile, cfg: &TbpointConfig, n_launches: usize) -> InterResult {
    if cfg.inter_enabled {
        inter_launch_sample(profile, &cfg.inter)
    } else {
        // Every launch is its own cluster: all are simulated.
        InterResult {
            clustering: Clustering::from_assignments(&(0..n_launches).collect::<Vec<_>>()),
            representatives: (0..n_launches).collect(),
            features: vec![],
        }
    }
}

/// Sanity-check one representative's launch profile before trusting it
/// for fast-forwarding: the block roster must match the launch spec and
/// the derived features must be finite numbers. A failure here means the
/// profile is truncated, padded, misnumbered or numerically corrupt.
fn validate_launch_profile(spec: &LaunchSpec, lp: &LaunchProfile) -> Result<(), String> {
    if lp.tbs.len() != spec.num_blocks as usize {
        return Err(format!(
            "profile has {} thread blocks, launch declares {}",
            lp.tbs.len(),
            spec.num_blocks
        ));
    }
    for (i, tb) in lp.tbs.iter().enumerate() {
        if tb.tb_id.0 as usize != i {
            return Err(format!("thread block {i} is numbered {}", tb.tb_id.0));
        }
    }
    let f = lp.inter_features();
    if !(f.thread_insts.is_finite()
        && f.warp_insts.is_finite()
        && f.mem_requests.is_finite()
        && f.tb_size_cov.is_finite())
    {
        return Err("inter-launch features are not finite".to_string());
    }
    Ok(())
}

/// Run one launch simulation under the optional cycle-budget watchdog.
#[allow(clippy::too_many_arguments)]
fn simulate_guarded<R: Recorder>(
    run: &KernelRun,
    spec: &LaunchSpec,
    gpu: &GpuConfig,
    hook: &mut dyn SamplingHook,
    cycle_budget: Option<u64>,
    jobs: usize,
    rep: usize,
    rec: &R,
) -> Result<tbpoint_sim::LaunchSimResult, TbError> {
    let opts = SimOptions {
        jobs,
        ..SimOptions::default()
    };
    match cycle_budget {
        Some(budget) => {
            let mut guard = CycleBudgetHook::new(hook, budget);
            let r = simulate_launch_obs_with_options(
                &run.kernel,
                spec,
                gpu,
                &mut guard,
                None,
                opts,
                rec,
            );
            if guard.exceeded() {
                Err(TbError::BudgetExceeded {
                    launch: rep,
                    budget_cycles: budget,
                })
            } else {
                Ok(r)
            }
        }
        None => Ok(simulate_launch_obs_with_options(
            &run.kernel,
            spec,
            gpu,
            hook,
            None,
            opts,
            rec,
        )),
    }
}

/// Step 2 for one representative: simulate it with intra-launch sampling
/// (when enabled), reporting into `rec`. Monomorphised over the recorder,
/// so the untraced pipeline keeps its zero-instrumentation fast path.
///
/// Degradation ladder: a representative whose profile fails validation
/// is simulated in full and its IPC taken from the simulator (the
/// profile's instruction counts are untrustworthy); a region whose
/// warming budget runs out falls back to detailed simulation inside the
/// sampler. Both paths emit `DegradedMode` and mark the rep degraded. A
/// launch that overruns `cfg.cycle_budget` is the one unrecoverable
/// case: its numbers are garbage, so it surfaces as
/// [`TbError::BudgetExceeded`].
///
/// `jobs` is the intra-launch SM-shard worker count
/// ([`ExecPlan::sim_jobs`]); the simulator clamps it structurally to
/// the SM count.
#[allow(clippy::too_many_arguments)]
fn simulate_rep<R: Recorder>(
    run: &KernelRun,
    profile: &RunProfile,
    cfg: &TbpointConfig,
    gpu: &GpuConfig,
    occupancy: u32,
    jobs: usize,
    rep: usize,
    rec: &R,
) -> Result<RepSim, TbError> {
    let spec = &run.launches[rep];
    let launch_profile = &profile.launches[rep];

    let profile_ok = match validate_launch_profile(spec, launch_profile) {
        Ok(()) => true,
        Err(_) => {
            rec.record(
                0,
                EventKind::DegradedMode {
                    reason: DegradeReason::ProfileInvalid,
                },
            );
            false
        }
    };

    if profile_ok && cfg.intra_enabled {
        let epochs = build_epochs(launch_profile, occupancy);
        let table = identify_regions(&epochs, &cfg.intra);
        let mut sampler = RegionSampler::builder(&table, launch_profile)
            .threshold(cfg.warming_threshold)
            .unit_tb_span(cfg.unit_tb_span)
            .warming_window(cfg.warming_window)
            .warming_budget(cfg.warming_budget)
            .recorder(rec)
            .build()?;
        let r = simulate_guarded(
            run,
            spec,
            gpu,
            &mut sampler,
            cfg.cycle_budget,
            jobs,
            rep,
            rec,
        )?;
        let o = sampler.outcome();
        let launch_insts = launch_profile.warp_insts();
        let predicted_cycles = r.cycles as f64 + o.predicted_skipped_cycles;
        let predicted_ipc = if predicted_cycles > 0.0 {
            launch_insts as f64 / predicted_cycles
        } else {
            0.0
        };
        return Ok(RepSim {
            issued: r.issued_warp_insts,
            skipped_insts: o.skipped_warp_insts,
            sim_cycles: r.cycles,
            predicted_cycles,
            predicted_ipc,
            degraded: o.degraded_regions > 0,
        });
    }

    // Detailed simulation: either intra-launch sampling is disabled, or
    // the profile cannot be trusted (degraded). In the degraded case the
    // launch's instruction count comes from the simulator, not the
    // corrupt profile.
    let r = simulate_guarded(
        run,
        spec,
        gpu,
        &mut NullSampling,
        cfg.cycle_budget,
        jobs,
        rep,
        rec,
    )?;
    let launch_insts = if profile_ok {
        launch_profile.warp_insts()
    } else {
        r.issued_warp_insts
    };
    let predicted_cycles = r.cycles as f64;
    let predicted_ipc = if predicted_cycles > 0.0 {
        launch_insts as f64 / predicted_cycles
    } else {
        0.0
    };
    Ok(RepSim {
        issued: r.issued_warp_insts,
        skipped_insts: 0,
        sim_cycles: r.cycles,
        predicted_cycles,
        predicted_ipc,
        degraded: !profile_ok,
    })
}

/// Steps 3-4: extend representatives to their clusters and aggregate.
fn aggregate(
    run: &KernelRun,
    profile: &RunProfile,
    inter: InterResult,
    rep_results: &[RepSim],
) -> TbpointResult {
    let n_launches = run.launches.len();
    // rep_outcome[launch] = Some((predicted_cycles, predicted_ipc)).
    let mut rep_outcome: Vec<Option<(f64, f64)>> = vec![None; n_launches];
    let mut simulated_warp_insts = 0u64;
    let mut intra_skipped = 0u64;
    let mut degraded_launches = 0usize;
    for (&rep, r) in inter.representatives.iter().zip(rep_results) {
        simulated_warp_insts += r.issued;
        intra_skipped += r.skipped_insts;
        if r.degraded {
            degraded_launches += 1;
        }
        rep_outcome[rep] = Some((r.predicted_cycles, r.predicted_ipc));
    }

    let mut per_launch_predicted_cycles = Vec::with_capacity(n_launches);
    let mut inter_skipped = 0u64;
    let mut total_insts = 0u64;
    for i in 0..n_launches {
        let launch_insts = profile.launches[i].warp_insts();
        total_insts += launch_insts;
        let rep = inter.representatives[inter.clustering.assignments[i]];
        // Filled for every representative by the loop above; the
        // fallback only guards an impossible index.
        let (rep_cycles, rep_ipc) = rep_outcome[rep].unwrap_or((0.0, 0.0));
        if i == rep {
            per_launch_predicted_cycles.push(rep_cycles);
        } else {
            inter_skipped += launch_insts;
            let cycles = if rep_ipc > 0.0 {
                launch_insts as f64 / rep_ipc
            } else {
                rep_cycles
            };
            per_launch_predicted_cycles.push(cycles);
        }
    }
    let predicted_total_cycles: f64 = per_launch_predicted_cycles.iter().sum();
    let predicted_ipc = if predicted_total_cycles > 0.0 {
        total_insts as f64 / predicted_total_cycles
    } else {
        0.0
    };

    TbpointResult {
        kernel_name: run.kernel.name.clone(),
        predicted_ipc,
        simulated_warp_insts,
        total_warp_insts: total_insts,
        predicted_total_cycles,
        breakdown: SavingsBreakdown {
            inter_skipped_warp_insts: inter_skipped,
            intra_skipped_warp_insts: intra_skipped,
        },
        num_simulated_launches: inter.representatives.len(),
        num_launches: n_launches,
        per_launch_predicted_cycles,
        inter_clustering: inter.clustering,
        degraded_launches,
    }
}

/// Run the full TBPoint pipeline for one benchmark.
///
/// `profile` must be the one-time profile of `run` (from
/// [`tbpoint_emu::profile_run`]); `gpu` is the simulated configuration —
/// changing it only re-runs clustering and simulation, never profiling.
///
/// # Errors
///
/// [`TbError::InvalidConfig`] when [`TbpointConfig::validate`] rejects
/// `cfg`; [`TbError::ProfileMismatch`] when the profile's launch count
/// differs from the run's.
pub fn run_tbpoint(
    run: &KernelRun,
    profile: &RunProfile,
    cfg: &TbpointConfig,
    gpu: &GpuConfig,
) -> Result<TbpointResult, TbError> {
    run_tbpoint_plan(run, profile, cfg, gpu, ExecPlan::serial())
}

/// [`run_tbpoint`] under an explicit [`ExecPlan`].
///
/// Step 2 fans the representatives out across `plan.pool_workers`
/// threads of the deterministic job pool (whole launches are the unit
/// of scheduling); each launch simulation itself runs with
/// `plan.sim_jobs` SM-shard workers. Results land in per-representative
/// slots and are merged in canonical representative order, so the
/// [`TbpointResult`] is bit-identical to serial at every worker count
/// on both axes (the golden determinism suite asserts this).
///
/// # Errors
///
/// Exactly as [`run_tbpoint`]; a failing representative reports the
/// error with the lowest recorded representative index.
pub fn run_tbpoint_plan(
    run: &KernelRun,
    profile: &RunProfile,
    cfg: &TbpointConfig,
    gpu: &GpuConfig,
    plan: ExecPlan,
) -> Result<TbpointResult, TbError> {
    cfg.validate()?;
    check_profile(run, profile)?;
    let n_launches = run.launches.len();
    let inter = pick_launches(profile, cfg, n_launches);
    let occupancy = gpu.system_occupancy(&run.kernel);

    // Step 2: simulate each representative with intra-launch sampling,
    // scheduled as whole launches across the pool.
    let plan = plan.normalized();
    let reps = &inter.representatives;
    let rep_results = run_indexed(plan.pool_workers, reps.len(), |i| {
        simulate_rep(
            run,
            profile,
            cfg,
            gpu,
            occupancy,
            plan.sim_jobs,
            reps[i],
            &NullRecorder,
        )
    })
    .map_err(|(_, e)| e)?;

    Ok(aggregate(run, profile, inter, &rep_results))
}

/// [`run_tbpoint`] with per-launch observability traces.
///
/// Each simulated representative gets its own [`CollectingRecorder`]
/// wrapped in a [`Span::SimulateLaunch`] span; traces are returned in
/// representative order (ascending launch index within each cluster
/// pick). Recording is observation-only: the [`TbpointResult`] is
/// bit-identical to [`run_tbpoint`]'s (the golden determinism test
/// asserts this). Runs serially; use [`run_tbpoint_traced_plan`] to
/// fan out.
///
/// # Errors
///
/// Exactly as [`run_tbpoint`].
pub fn run_tbpoint_traced(
    run: &KernelRun,
    profile: &RunProfile,
    cfg: &TbpointConfig,
    gpu: &GpuConfig,
) -> Result<(TbpointResult, Vec<LaunchTrace>), TbError> {
    run_tbpoint_traced_plan(run, profile, cfg, gpu, ExecPlan::serial())
}

/// [`run_tbpoint_traced`] under an explicit [`ExecPlan`].
///
/// Tracing composes with the pool: every representative records into
/// its own [`CollectingRecorder`] created inside its pool job (the
/// recorder is `Send` but not `Sync`, so recorders are never shared
/// across workers), and the per-launch [`TraceBundle`]s are merged back
/// in canonical representative order. Both the result *and* the traces
/// are therefore bit-identical to the serial run at every worker count.
///
/// # Errors
///
/// Exactly as [`run_tbpoint`].
pub fn run_tbpoint_traced_plan(
    run: &KernelRun,
    profile: &RunProfile,
    cfg: &TbpointConfig,
    gpu: &GpuConfig,
    plan: ExecPlan,
) -> Result<(TbpointResult, Vec<LaunchTrace>), TbError> {
    cfg.validate()?;
    check_profile(run, profile)?;
    let n_launches = run.launches.len();
    let inter = pick_launches(profile, cfg, n_launches);
    let occupancy = gpu.system_occupancy(&run.kernel);

    let plan = plan.normalized();
    let reps = &inter.representatives;
    let outcomes = run_indexed(plan.pool_workers, reps.len(), |i| {
        let rep = reps[i];
        let rec = CollectingRecorder::new();
        let span = Span::SimulateLaunch {
            launch: run.launches[rep].launch_id.0,
        };
        rec.span_start(0, span);
        let r = simulate_rep(run, profile, cfg, gpu, occupancy, plan.sim_jobs, rep, &rec)?;
        rec.span_end(r.sim_cycles, span);
        Ok((r, rec.finish()))
    })
    .map_err(|(_, e): (usize, TbError)| e)?;

    let mut rep_results = Vec::with_capacity(outcomes.len());
    let mut traces = Vec::with_capacity(outcomes.len());
    for (&rep, (r, trace)) in reps.iter().zip(outcomes) {
        rep_results.push(r);
        traces.push(LaunchTrace { launch: rep, trace });
    }

    Ok((aggregate(run, profile, inter, &rep_results), traces))
}

// --- live single-pass pipeline -----------------------------------------

/// Live inter-launch grouping: with no profile (and therefore no Eq. 2
/// feature vectors), launches are grouped by their *specs* — identical
/// `(num_blocks, work_scale)` means identical work on our deterministic
/// substrate, so one representative per spec class suffices. The first
/// launch of each class is its representative.
fn live_classes(run: &KernelRun, cfg: &TbpointConfig) -> InterResult {
    let n = run.launches.len();
    if !cfg.inter_enabled {
        return InterResult {
            clustering: Clustering::from_assignments(&(0..n).collect::<Vec<_>>()),
            representatives: (0..n).collect(),
            features: vec![],
        };
    }
    let mut keys: Vec<(u32, u64)> = Vec::new();
    let mut assignments = Vec::with_capacity(n);
    let mut representatives = Vec::new();
    for (i, spec) in run.launches.iter().enumerate() {
        let key = (spec.num_blocks, spec.work_scale.to_bits());
        match keys.iter().position(|k| *k == key) {
            Some(c) => assignments.push(c),
            None => {
                assignments.push(keys.len());
                representatives.push(i);
                keys.push(key);
            }
        }
    }
    InterResult {
        clustering: Clustering::from_assignments(&assignments),
        representatives,
        features: vec![],
    }
}

/// Step 2 of the live pipeline: simulate one representative with the
/// online [`LiveSampler`] (no profile). Instruction totals come out of
/// the simulator plus the sampler's skip estimates instead of a profile.
#[allow(clippy::too_many_arguments)]
fn simulate_rep_live<R: Recorder>(
    run: &KernelRun,
    cfg: &TbpointConfig,
    gpu: &GpuConfig,
    occupancy: u32,
    block_invariant: bool,
    jobs: usize,
    rep: usize,
    rec: &R,
) -> Result<RepSim, TbError> {
    let spec = &run.launches[rep];
    if cfg.intra_enabled {
        let mut sampler = LiveSampler::builder(spec.num_blocks, occupancy)
            .block_invariant(block_invariant)
            .sigma(cfg.intra.sigma)
            .threshold(cfg.warming_threshold)
            .unit_tb_span(cfg.unit_tb_span)
            .warming_window(cfg.warming_window)
            .warming_budget(cfg.warming_budget)
            .min_run(cfg.live_min_run)
            .guard_period(cfg.live_guard_period)
            .destab_tolerance(cfg.live_destab_tolerance)
            .recorder(rec)
            .build()?;
        let r = simulate_guarded(
            run,
            spec,
            gpu,
            &mut sampler,
            cfg.cycle_budget,
            jobs,
            rep,
            rec,
        )?;
        let o = sampler.outcome();
        let est_total = r.issued_warp_insts + o.skipped_warp_insts;
        let predicted_cycles = r.cycles as f64 + o.predicted_skipped_cycles;
        let predicted_ipc = if predicted_cycles > 0.0 {
            est_total as f64 / predicted_cycles
        } else {
            0.0
        };
        return Ok(RepSim {
            issued: r.issued_warp_insts,
            skipped_insts: o.skipped_warp_insts,
            sim_cycles: r.cycles,
            predicted_cycles,
            predicted_ipc,
            degraded: o.degraded_regions > 0,
        });
    }

    // Intra-launch sampling disabled: the "live" run is just a detailed
    // simulation (still profile-free; instruction counts are exact).
    let r = simulate_guarded(
        run,
        spec,
        gpu,
        &mut NullSampling,
        cfg.cycle_budget,
        jobs,
        rep,
        rec,
    )?;
    let predicted_cycles = r.cycles as f64;
    let predicted_ipc = if predicted_cycles > 0.0 {
        r.issued_warp_insts as f64 / predicted_cycles
    } else {
        0.0
    };
    Ok(RepSim {
        issued: r.issued_warp_insts,
        skipped_insts: 0,
        sim_cycles: r.cycles,
        predicted_cycles,
        predicted_ipc,
        degraded: false,
    })
}

/// Steps 3-4 of the live pipeline. Identical accounting to the two-phase
/// [`aggregate`], except instruction totals come from the simulated
/// representatives (issued + estimated skipped) instead of the profile:
/// a non-representative launch shares its class representative's spec,
/// so its instruction count *is* the representative's estimated total.
fn aggregate_live(run: &KernelRun, inter: InterResult, rep_results: &[RepSim]) -> TbpointResult {
    let n_launches = run.launches.len();
    // rep_outcome[launch] = (predicted_cycles, predicted_ipc, est insts).
    let mut rep_outcome: Vec<Option<(f64, f64, u64)>> = vec![None; n_launches];
    let mut simulated_warp_insts = 0u64;
    let mut intra_skipped = 0u64;
    let mut degraded_launches = 0usize;
    for (&rep, r) in inter.representatives.iter().zip(rep_results) {
        simulated_warp_insts += r.issued;
        intra_skipped += r.skipped_insts;
        if r.degraded {
            degraded_launches += 1;
        }
        rep_outcome[rep] = Some((
            r.predicted_cycles,
            r.predicted_ipc,
            r.issued + r.skipped_insts,
        ));
    }

    let mut per_launch_predicted_cycles = Vec::with_capacity(n_launches);
    let mut inter_skipped = 0u64;
    let mut total_insts = 0u64;
    for i in 0..n_launches {
        let rep = inter.representatives[inter.clustering.assignments[i]];
        // Filled for every representative by the loop above; the
        // fallback only guards an impossible index.
        let (rep_cycles, rep_ipc, rep_insts) = rep_outcome[rep].unwrap_or((0.0, 0.0, 0));
        total_insts += rep_insts;
        if i == rep {
            per_launch_predicted_cycles.push(rep_cycles);
        } else {
            inter_skipped += rep_insts;
            let cycles = if rep_ipc > 0.0 {
                rep_insts as f64 / rep_ipc
            } else {
                rep_cycles
            };
            per_launch_predicted_cycles.push(cycles);
        }
    }
    let predicted_total_cycles: f64 = per_launch_predicted_cycles.iter().sum();
    let predicted_ipc = if predicted_total_cycles > 0.0 {
        total_insts as f64 / predicted_total_cycles
    } else {
        0.0
    };

    TbpointResult {
        kernel_name: run.kernel.name.clone(),
        predicted_ipc,
        simulated_warp_insts,
        total_warp_insts: total_insts,
        predicted_total_cycles,
        breakdown: SavingsBreakdown {
            inter_skipped_warp_insts: inter_skipped,
            intra_skipped_warp_insts: intra_skipped,
        },
        num_simulated_launches: inter.representatives.len(),
        num_launches: n_launches,
        per_launch_predicted_cycles,
        inter_clustering: inter.clustering,
        degraded_launches,
    }
}

/// Run the live single-pass TBPoint pipeline for one benchmark: no
/// profiling pass, no region tables — epoch detection, clustering and
/// fast-forwarding all happen online inside the one timing simulation
/// (see [`crate::sampling::live::LiveSampler`]).
///
/// The returned [`TbpointResult`] has the same shape as
/// [`run_tbpoint`]'s, but `total_warp_insts` (and everything derived
/// from it) is an *estimate*: exact for block-invariant kernels, the
/// cluster running mean otherwise.
///
/// # Errors
///
/// [`TbError::InvalidConfig`] when [`TbpointConfig::validate`] rejects
/// `cfg`; [`TbError::BudgetExceeded`] when a representative overruns
/// `cfg.cycle_budget`.
pub fn run_tbpoint_live(
    run: &KernelRun,
    cfg: &TbpointConfig,
    gpu: &GpuConfig,
) -> Result<TbpointResult, TbError> {
    run_tbpoint_live_plan(run, cfg, gpu, ExecPlan::serial())
}

/// [`run_tbpoint_live`] under an explicit [`ExecPlan`].
///
/// Exactly like [`run_tbpoint_plan`], representatives fan out across
/// `plan.pool_workers` pool threads and each launch runs with
/// `plan.sim_jobs` SM-shard workers; the retire-time feature stream the
/// live sampler consumes is delivered in the same deterministic order at
/// every worker count, so the result is bit-identical to serial on both
/// axes.
///
/// # Errors
///
/// Exactly as [`run_tbpoint_live`]; a failing representative reports
/// the error with the lowest recorded representative index.
pub fn run_tbpoint_live_plan(
    run: &KernelRun,
    cfg: &TbpointConfig,
    gpu: &GpuConfig,
    plan: ExecPlan,
) -> Result<TbpointResult, TbError> {
    cfg.validate()?;
    let inter = live_classes(run, cfg);
    let occupancy = gpu.system_occupancy(&run.kernel);
    let deps = TraceDeps::of(&run.kernel);
    let block_invariant = !deps.per_thread && !deps.per_block;

    let plan = plan.normalized();
    let reps = &inter.representatives;
    let rep_results = run_indexed(plan.pool_workers, reps.len(), |i| {
        simulate_rep_live(
            run,
            cfg,
            gpu,
            occupancy,
            block_invariant,
            plan.sim_jobs,
            reps[i],
            &NullRecorder,
        )
    })
    .map_err(|(_, e)| e)?;

    Ok(aggregate_live(run, inter, &rep_results))
}

/// [`run_tbpoint_live`] with per-launch observability traces (the live
/// analogue of [`run_tbpoint_traced`]). Runs serially; use
/// [`run_tbpoint_live_traced_plan`] to fan out.
///
/// # Errors
///
/// Exactly as [`run_tbpoint_live`].
pub fn run_tbpoint_live_traced(
    run: &KernelRun,
    cfg: &TbpointConfig,
    gpu: &GpuConfig,
) -> Result<(TbpointResult, Vec<LaunchTrace>), TbError> {
    run_tbpoint_live_traced_plan(run, cfg, gpu, ExecPlan::serial())
}

/// [`run_tbpoint_live_traced`] under an explicit [`ExecPlan`]: each
/// representative records into its own [`CollectingRecorder`] inside its
/// pool job and traces merge back in canonical representative order, so
/// both the result and the trace streams are bit-identical to serial at
/// every worker count.
///
/// # Errors
///
/// Exactly as [`run_tbpoint_live`].
pub fn run_tbpoint_live_traced_plan(
    run: &KernelRun,
    cfg: &TbpointConfig,
    gpu: &GpuConfig,
    plan: ExecPlan,
) -> Result<(TbpointResult, Vec<LaunchTrace>), TbError> {
    cfg.validate()?;
    let inter = live_classes(run, cfg);
    let occupancy = gpu.system_occupancy(&run.kernel);
    let deps = TraceDeps::of(&run.kernel);
    let block_invariant = !deps.per_thread && !deps.per_block;

    let plan = plan.normalized();
    let reps = &inter.representatives;
    let outcomes = run_indexed(plan.pool_workers, reps.len(), |i| {
        let rep = reps[i];
        let rec = CollectingRecorder::new();
        let span = Span::SimulateLaunch {
            launch: run.launches[rep].launch_id.0,
        };
        rec.span_start(0, span);
        let r = simulate_rep_live(
            run,
            cfg,
            gpu,
            occupancy,
            block_invariant,
            plan.sim_jobs,
            rep,
            &rec,
        )?;
        rec.span_end(r.sim_cycles, span);
        Ok((r, rec.finish()))
    })
    .map_err(|(_, e): (usize, TbError)| e)?;

    let mut rep_results = Vec::with_capacity(outcomes.len());
    let mut traces = Vec::with_capacity(outcomes.len());
    for (&rep, (r, trace)) in reps.iter().zip(outcomes) {
        rep_results.push(r);
        traces.push(LaunchTrace { launch: rep, trace });
    }

    Ok((aggregate_live(run, inter, &rep_results), traces))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbpoint_emu::profile_run;
    use tbpoint_ir::{AddrPattern, KernelBuilder, KernelRun, LaunchId, LaunchSpec, Op, TripCount};
    use tbpoint_sim::{simulate_run, NullSampling};

    fn homogeneous_run(n_launches: u32, blocks_per_launch: u32) -> KernelRun {
        let mut b = KernelBuilder::new("homog", 31, 128);
        let body = b.block(&[
            Op::IAlu,
            Op::FAlu,
            Op::LdGlobal(AddrPattern::Coalesced {
                region: 0,
                stride: 4,
            }),
        ]);
        let n = b.loop_(TripCount::Const(30), body);
        let kernel = b.finish(n);
        KernelRun {
            kernel,
            launches: (0..n_launches)
                .map(|i| LaunchSpec {
                    launch_id: LaunchId(i),
                    num_blocks: blocks_per_launch,
                    work_scale: 1.0,
                })
                .collect(),
        }
    }

    #[test]
    fn tbpoint_on_homogeneous_run_is_accurate_and_cheap() {
        let run = homogeneous_run(6, 1800);
        let gpu = GpuConfig::fermi();
        let profile = profile_run(&run, 2);
        let full = simulate_run(&run, &gpu, &mut NullSampling, None);

        let result = run_tbpoint(&run, &profile, &TbpointConfig::default(), &gpu).unwrap();
        assert_eq!(
            result.num_simulated_launches, 1,
            "6 identical launches -> 1 simulated"
        );
        let err = result.error_vs(full.overall_ipc());
        assert!(err < 10.0, "error {err:.2}% too high");
        assert!(
            result.sample_size() < 0.25,
            "sample size {:.3} should be small",
            result.sample_size()
        );
        // Savings from both techniques.
        assert!(result.breakdown.inter_skipped_warp_insts > 0);
        assert!(result.breakdown.intra_skipped_warp_insts > 0);
        // Conservation: simulated + skipped = total.
        assert_eq!(
            result.simulated_warp_insts + result.breakdown.total_skipped(),
            result.total_warp_insts
        );
    }

    #[test]
    fn disabling_inter_simulates_every_launch() {
        let run = homogeneous_run(4, 200);
        let gpu = GpuConfig::fermi();
        let profile = profile_run(&run, 2);
        let cfg = TbpointConfig {
            inter_enabled: false,
            ..Default::default()
        };
        let result = run_tbpoint(&run, &profile, &cfg, &gpu).unwrap();
        assert_eq!(result.num_simulated_launches, 4);
        assert_eq!(result.breakdown.inter_skipped_warp_insts, 0);
    }

    #[test]
    fn disabling_intra_runs_representatives_in_full() {
        let run = homogeneous_run(4, 200);
        let gpu = GpuConfig::fermi();
        let profile = profile_run(&run, 2);
        let cfg = TbpointConfig {
            intra_enabled: false,
            ..Default::default()
        };
        let result = run_tbpoint(&run, &profile, &cfg, &gpu).unwrap();
        assert_eq!(result.breakdown.intra_skipped_warp_insts, 0);
        assert_eq!(result.num_simulated_launches, 1);
        // The one simulated launch runs in full.
        let one_launch: u64 = profile.launches[0].warp_insts();
        assert_eq!(result.simulated_warp_insts, one_launch);
    }

    #[test]
    fn disabling_both_is_full_simulation() {
        let run = homogeneous_run(3, 100);
        let gpu = GpuConfig::fermi();
        let profile = profile_run(&run, 2);
        let cfg = TbpointConfig {
            inter_enabled: false,
            intra_enabled: false,
            ..Default::default()
        };
        let result = run_tbpoint(&run, &profile, &cfg, &gpu).unwrap();
        assert_eq!(result.sample_size(), 1.0);
        let full = simulate_run(&run, &gpu, &mut NullSampling, None);
        assert!(result.error_vs(full.overall_ipc()) < 1e-9);
    }

    #[test]
    fn breakdown_fraction_math() {
        let b = SavingsBreakdown {
            inter_skipped_warp_insts: 30,
            intra_skipped_warp_insts: 10,
        };
        assert!((b.inter_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(SavingsBreakdown::default().inter_fraction(), 0.0);
    }

    #[test]
    fn mismatched_profile_is_an_error_not_a_panic() {
        let run = homogeneous_run(3, 10);
        let short_run = homogeneous_run(2, 10);
        let profile = profile_run(&short_run, 1);
        let err = run_tbpoint(
            &run,
            &profile,
            &TbpointConfig::default(),
            &GpuConfig::fermi(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            TbError::ProfileMismatch {
                run_launches: 3,
                profile_launches: 2
            }
        );
    }

    #[test]
    fn nonsense_config_is_rejected_up_front() {
        let run = homogeneous_run(2, 10);
        let profile = profile_run(&run, 1);
        let gpu = GpuConfig::fermi();

        let zero_span = TbpointConfig {
            unit_tb_span: 0,
            ..Default::default()
        };
        let err = run_tbpoint(&run, &profile, &zero_span, &gpu).unwrap_err();
        assert!(matches!(
            err,
            TbError::InvalidConfig {
                field: "unit_tb_span",
                ..
            }
        ));

        let bad_threshold = TbpointConfig {
            warming_threshold: -0.1,
            ..Default::default()
        };
        let err = run_tbpoint(&run, &profile, &bad_threshold, &gpu).unwrap_err();
        assert!(matches!(
            err,
            TbError::InvalidConfig {
                field: "warming_threshold",
                ..
            }
        ));

        let bad_sigma = TbpointConfig {
            inter: InterConfig {
                sigma: f64::NAN,
                ..Default::default()
            },
            ..Default::default()
        };
        let err = bad_sigma.validate().unwrap_err();
        assert!(matches!(
            err,
            TbError::InvalidConfig {
                field: "inter.sigma",
                ..
            }
        ));
    }

    #[test]
    fn invalid_profile_degrades_to_detailed_simulation() {
        let run = homogeneous_run(3, 200);
        let gpu = GpuConfig::fermi();
        let mut profile = profile_run(&run, 2);
        // Truncate every launch's block roster: validation must fail and
        // the pipeline must fall back to full detailed simulation of the
        // representatives instead of indexing out of bounds.
        for lp in &mut profile.launches {
            lp.tbs.pop();
        }
        let result = run_tbpoint(&run, &profile, &TbpointConfig::default(), &gpu).unwrap();
        assert_eq!(result.degraded_launches, result.num_simulated_launches);
        assert_eq!(result.degradation_ratio(), 1.0);
        // Degraded reps run in full: nothing was intra-skipped.
        assert_eq!(result.breakdown.intra_skipped_warp_insts, 0);
        assert!(result.predicted_ipc.is_finite() && result.predicted_ipc > 0.0);
    }

    #[test]
    fn invalid_profile_emits_degraded_mode_event() {
        let run = homogeneous_run(2, 100);
        let gpu = GpuConfig::fermi();
        let mut profile = profile_run(&run, 2);
        for lp in &mut profile.launches {
            lp.tbs.pop();
        }
        let (result, traces) =
            run_tbpoint_traced(&run, &profile, &TbpointConfig::default(), &gpu).unwrap();
        assert!(result.degraded_launches > 0);
        let degraded_events: usize = traces
            .iter()
            .flat_map(|t| &t.trace.events)
            .filter(|e| {
                matches!(
                    e.kind,
                    tbpoint_obs::EventKind::DegradedMode {
                        reason: DegradeReason::ProfileInvalid
                    }
                )
            })
            .count();
        assert_eq!(degraded_events, result.degraded_launches);
    }

    #[test]
    fn warming_budget_abandons_unstable_regions() {
        let run = homogeneous_run(1, 1800);
        let gpu = GpuConfig::fermi();
        let profile = profile_run(&run, 2);
        // A threshold no pair of real unit IPCs can meet plus the
        // tightest legal budget forces every region to abandon warming.
        let cfg = TbpointConfig {
            warming_threshold: 1e-300,
            warming_budget: Some(crate::sampling::WARMING_WINDOW as u32),
            ..Default::default()
        };
        let (result, traces) = run_tbpoint_traced(&run, &profile, &cfg, &gpu).unwrap();
        assert_eq!(result.degraded_launches, 1);
        assert!(result.degradation_ratio() > 0.0);
        // Abandoned regions are simulated in detail: no fast-forwarding.
        assert_eq!(result.breakdown.intra_skipped_warp_insts, 0);
        assert!(traces.iter().flat_map(|t| &t.trace.events).any(|e| {
            matches!(
                e.kind,
                tbpoint_obs::EventKind::DegradedMode {
                    reason: DegradeReason::WarmingBudgetExceeded { .. }
                }
            )
        }));
        // Sanity: the same config without the budget warms forever but
        // still terminates (regions just never fast-forward).
        let no_budget = TbpointConfig {
            warming_budget: None,
            ..cfg
        };
        let r2 = run_tbpoint(&run, &profile, &no_budget, &gpu).unwrap();
        assert_eq!(r2.degraded_launches, 0);
    }

    #[test]
    fn cycle_budget_overrun_is_an_error_not_a_hang() {
        let run = homogeneous_run(1, 1800);
        let gpu = GpuConfig::fermi();
        let profile = profile_run(&run, 2);
        let cfg = TbpointConfig {
            cycle_budget: Some(1),
            ..Default::default()
        };
        let err = run_tbpoint(&run, &profile, &cfg, &gpu).unwrap_err();
        assert_eq!(
            err,
            TbError::BudgetExceeded {
                launch: 0,
                budget_cycles: 1
            }
        );
        // A generous budget never trips and leaves the result untouched.
        let roomy = TbpointConfig {
            cycle_budget: Some(u64::MAX),
            ..Default::default()
        };
        let guarded = run_tbpoint(&run, &profile, &roomy, &gpu).unwrap();
        let plain = run_tbpoint(&run, &profile, &TbpointConfig::default(), &gpu).unwrap();
        assert_eq!(guarded, plain);
    }

    #[test]
    fn resilience_config_fields_are_validated() {
        let bad_budget = TbpointConfig {
            warming_budget: Some(1),
            ..Default::default()
        };
        assert!(matches!(
            bad_budget.validate().unwrap_err(),
            TbError::InvalidConfig {
                field: "warming_budget",
                ..
            }
        ));
        let zero_cycles = TbpointConfig {
            cycle_budget: Some(0),
            ..Default::default()
        };
        assert!(matches!(
            zero_cycles.validate().unwrap_err(),
            TbError::InvalidConfig {
                field: "cycle_budget",
                ..
            }
        ));
    }

    #[test]
    fn degradation_ratio_math() {
        let run = homogeneous_run(2, 100);
        let profile = profile_run(&run, 2);
        let mut r = run_tbpoint(
            &run,
            &profile,
            &TbpointConfig::default(),
            &GpuConfig::fermi(),
        )
        .unwrap();
        assert_eq!(r.degradation_ratio(), 0.0);
        r.degraded_launches = r.num_simulated_launches;
        assert_eq!(r.degradation_ratio(), 1.0);
        r.num_simulated_launches = 0;
        assert_eq!(r.degradation_ratio(), 0.0);
    }

    #[test]
    fn traced_run_matches_untraced_and_captures_spans() {
        let run = homogeneous_run(4, 400);
        let gpu = GpuConfig::fermi();
        let profile = profile_run(&run, 2);
        let cfg = TbpointConfig::default();
        let plain = run_tbpoint(&run, &profile, &cfg, &gpu).unwrap();
        let (traced, traces) = run_tbpoint_traced(&run, &profile, &cfg, &gpu).unwrap();
        // Recording is observation-only: bit-identical results.
        assert_eq!(plain, traced);
        assert_eq!(traces.len(), traced.num_simulated_launches);
        for t in &traces {
            assert!(!t.trace.events.is_empty(), "launch {} empty", t.launch);
            // Each trace opens and closes its SimulateLaunch span.
            assert!(matches!(
                t.trace.events.first().map(|e| e.kind),
                Some(tbpoint_obs::EventKind::SpanStart { .. })
            ));
            assert!(matches!(
                t.trace.events.last().map(|e| e.kind),
                Some(tbpoint_obs::EventKind::SpanEnd { .. })
            ));
            // And saw real simulator traffic (counters from the SM layer).
            assert!(t
                .trace
                .counters
                .iter()
                .any(|c| c.name == "issued_warp_insts"));
        }
    }

    #[test]
    fn live_mode_on_homogeneous_run_is_accurate_and_cheap() {
        let run = homogeneous_run(6, 1800);
        let gpu = GpuConfig::fermi();
        let full = simulate_run(&run, &gpu, &mut NullSampling, None);

        let cfg = TbpointConfig {
            mode: SamplingMode::Live,
            ..Default::default()
        };
        let result = run_tbpoint_live(&run, &cfg, &gpu).unwrap();
        assert_eq!(
            result.num_simulated_launches, 1,
            "6 identical specs -> 1 simulated"
        );
        let err = result.error_vs(full.overall_ipc());
        assert!(err < 10.0, "live error {err:.2}% too high");
        assert!(
            result.sample_size() < 0.25,
            "live sample size {:.3} should be small",
            result.sample_size()
        );
        assert!(result.breakdown.inter_skipped_warp_insts > 0);
        assert!(result.breakdown.intra_skipped_warp_insts > 0);
        // Conservation holds on the estimated totals too.
        assert_eq!(
            result.simulated_warp_insts + result.breakdown.total_skipped(),
            result.total_warp_insts
        );
        // Block-invariant kernel: the estimate is exact, so the total
        // matches what a profile would report.
        let profile = profile_run(&run, 2);
        let exact: u64 = profile.launches.iter().map(|l| l.warp_insts()).sum();
        assert_eq!(result.total_warp_insts, exact);
    }

    #[test]
    fn live_and_two_phase_agree_on_homogeneous_run() {
        let run = homogeneous_run(4, 1800);
        let gpu = GpuConfig::fermi();
        let profile = profile_run(&run, 2);
        let cfg = TbpointConfig::default();
        let two_phase = run_tbpoint(&run, &profile, &cfg, &gpu).unwrap();
        let live = run_tbpoint_live(&run, &cfg, &gpu).unwrap();
        let rel = ((live.predicted_ipc - two_phase.predicted_ipc) / two_phase.predicted_ipc).abs();
        assert!(
            rel < 0.10,
            "live {:.3} vs two-phase {:.3}: {:.2}% apart",
            live.predicted_ipc,
            two_phase.predicted_ipc,
            rel * 100.0
        );
    }

    #[test]
    fn live_with_intra_disabled_matches_full_simulation() {
        let run = homogeneous_run(2, 300);
        let gpu = GpuConfig::fermi();
        let cfg = TbpointConfig {
            inter_enabled: false,
            intra_enabled: false,
            ..Default::default()
        };
        let result = run_tbpoint_live(&run, &cfg, &gpu).unwrap();
        assert_eq!(result.sample_size(), 1.0);
        let full = simulate_run(&run, &gpu, &mut NullSampling, None);
        assert!(result.error_vs(full.overall_ipc()) < 1e-9);
    }

    #[test]
    fn live_warming_budget_degrades_gracefully() {
        let run = homogeneous_run(1, 1800);
        let gpu = GpuConfig::fermi();
        let cfg = TbpointConfig {
            warming_threshold: 1e-300,
            warming_budget: Some(crate::sampling::WARMING_WINDOW as u32),
            ..Default::default()
        };
        let (result, traces) = run_tbpoint_live_traced(&run, &cfg, &gpu).unwrap();
        assert_eq!(result.degraded_launches, 1);
        assert_eq!(result.breakdown.intra_skipped_warp_insts, 0);
        assert!(traces.iter().flat_map(|t| &t.trace.events).any(|e| {
            matches!(
                e.kind,
                tbpoint_obs::EventKind::DegradedMode {
                    reason: DegradeReason::WarmingBudgetExceeded { .. }
                }
            )
        }));
    }

    #[test]
    fn live_cycle_budget_overrun_is_an_error() {
        let run = homogeneous_run(1, 1800);
        let gpu = GpuConfig::fermi();
        let cfg = TbpointConfig {
            cycle_budget: Some(1),
            ..Default::default()
        };
        let err = run_tbpoint_live(&run, &cfg, &gpu).unwrap_err();
        assert_eq!(
            err,
            TbError::BudgetExceeded {
                launch: 0,
                budget_cycles: 1
            }
        );
    }

    #[test]
    fn live_config_knobs_are_validated() {
        let run = homogeneous_run(1, 10);
        let gpu = GpuConfig::fermi();
        for (cfg, field) in [
            (
                TbpointConfig {
                    live_min_run: 0,
                    ..Default::default()
                },
                "live_min_run",
            ),
            (
                TbpointConfig {
                    live_guard_period: 0,
                    ..Default::default()
                },
                "live_guard_period",
            ),
            (
                TbpointConfig {
                    live_destab_tolerance: f64::NAN,
                    ..Default::default()
                },
                "live_destab_tolerance",
            ),
        ] {
            let err = run_tbpoint_live(&run, &cfg, &gpu).unwrap_err();
            match err {
                TbError::InvalidConfig { field: f, .. } => assert_eq!(f, field),
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn live_pooled_results_and_traces_are_identical_at_any_worker_count() {
        let run = homogeneous_run(5, 300);
        let gpu = GpuConfig::fermi();
        let cfg = TbpointConfig {
            inter_enabled: false,
            ..Default::default()
        };
        let serial = run_tbpoint_live(&run, &cfg, &gpu).unwrap();
        let (serial_traced, serial_traces) = run_tbpoint_live_traced(&run, &cfg, &gpu).unwrap();
        assert_eq!(serial, serial_traced, "tracing changed the live result");
        for (sim_jobs, pool_workers) in [(1, 1), (1, 2), (2, 1), (2, 2), (1, 4)] {
            let plan = ExecPlan {
                sim_jobs,
                pool_workers,
            };
            let pooled = run_tbpoint_live_plan(&run, &cfg, &gpu, plan).unwrap();
            assert_eq!(pooled, serial, "jobs={sim_jobs} workers={pool_workers}");
            let (traced, traces) = run_tbpoint_live_traced_plan(&run, &cfg, &gpu, plan).unwrap();
            assert_eq!(
                traced, serial_traced,
                "jobs={sim_jobs} workers={pool_workers}"
            );
            // Trace *streams* are canonical across the pool axis. Across
            // the SM-shard axis only the result is pinned: window
            // boundaries legitimately split idle jumps differently (the
            // same caveat as the two-phase pipeline).
            if sim_jobs == 1 {
                assert_eq!(traces, serial_traces, "workers={pool_workers}");
            }
        }
    }

    #[test]
    fn pooled_results_and_traces_are_identical_at_any_worker_count() {
        // Disable inter-launch sampling so several representatives are
        // actually simulated and the pool has launches to schedule.
        let run = homogeneous_run(5, 300);
        let gpu = GpuConfig::fermi();
        let profile = profile_run(&run, 2);
        let cfg = TbpointConfig {
            inter_enabled: false,
            ..Default::default()
        };
        let serial = run_tbpoint(&run, &profile, &cfg, &gpu).unwrap();
        let (serial_traced, serial_traces) =
            run_tbpoint_traced(&run, &profile, &cfg, &gpu).unwrap();
        for pool_workers in [1, 2, 4] {
            let plan = ExecPlan {
                sim_jobs: 1,
                pool_workers,
            };
            let pooled = run_tbpoint_plan(&run, &profile, &cfg, &gpu, plan).unwrap();
            assert_eq!(pooled, serial, "pool_workers={pool_workers}");
            let (traced, traces) =
                run_tbpoint_traced_plan(&run, &profile, &cfg, &gpu, plan).unwrap();
            assert_eq!(traced, serial_traced, "pool_workers={pool_workers}");
            // Canonical-order merge: the trace *streams* are identical
            // too, not just the results.
            assert_eq!(traces, serial_traces, "pool_workers={pool_workers}");
        }
    }
}

//! Homogeneous region identification (Section IV-B1 of the paper).
//!
//! Pipeline: thread blocks -> epochs (Eq. 4) -> intra-feature vectors
//! (Eq. 5, average stall probability) -> hierarchical clustering ->
//! variation-factor post-processing (outlier epochs isolated) -> maximal
//! runs of same-cluster epochs become homogeneous regions (Table III).
//!
//! Everything here consumes only the hardware-independent profile plus
//! the *system occupancy* — so when the simulated configuration changes
//! (Figs. 12-13), only this cheap step reruns, never the profiling.

use crate::error::{invalid, TbError};
use serde::{Deserialize, Serialize};
use tbpoint_cluster::{hierarchical_cluster, Linkage};
use tbpoint_emu::LaunchProfile;
use tbpoint_ir::TbId;
use tbpoint_stats::cov;

/// Intra-launch clustering parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntraConfig {
    /// Distance threshold σ for epoch clustering (paper: 0.2).
    pub sigma: f64,
    /// Variation-factor threshold above which an epoch is treated as
    /// containing outlier thread blocks (paper: 0.3).
    pub variation_factor: f64,
}

impl Default for IntraConfig {
    fn default() -> Self {
        IntraConfig {
            sigma: 0.2,
            variation_factor: 0.3,
        }
    }
}

impl IntraConfig {
    /// Reject values region identification cannot run with.
    ///
    /// # Errors
    ///
    /// [`TbError::InvalidConfig`] when σ is non-finite or non-positive,
    /// or the variation-factor threshold is non-finite or negative.
    pub fn validate(&self) -> Result<(), TbError> {
        if !self.sigma.is_finite() || self.sigma <= 0.0 {
            return Err(invalid(
                "intra.sigma",
                format!("must be finite and positive (got {})", self.sigma),
            ));
        }
        if !self.variation_factor.is_finite() || self.variation_factor < 0.0 {
            return Err(invalid(
                "intra.variation_factor",
                format!(
                    "must be finite and non-negative (got {})",
                    self.variation_factor
                ),
            ));
        }
        Ok(())
    }
}

/// One epoch: `system_occupancy` consecutive thread blocks (Eq. 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Epoch {
    /// Epoch index within the launch.
    pub index: u32,
    /// First TB id in the epoch (inclusive).
    pub start_tb: u32,
    /// One past the last TB id (exclusive).
    pub end_tb: u32,
    /// Average per-TB stall probability — the intra feature (Eq. 5).
    pub stall_probability: f64,
    /// Variation factor: max of the CoVs of per-TB memory requests and
    /// per-TB warp instructions (Eq. 5).
    pub variation_factor: f64,
}

/// A homogeneous region (one row of Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// Region id (the shared epoch-cluster id).
    pub region_id: u32,
    /// First TB id (inclusive).
    pub start_tb: u32,
    /// One past the last TB id (exclusive).
    pub end_tb: u32,
}

/// The homogeneous region table for one launch (Table III).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RegionTable {
    /// Regions in ascending TB order, non-overlapping.
    pub regions: Vec<Region>,
}

impl RegionTable {
    /// The region id covering `tb`, or `None` when the TB is outside all
    /// homogeneous regions (it must then be simulated as usual).
    pub fn region_of(&self, tb: TbId) -> Option<u32> {
        // Regions are sorted by start; binary search the candidate.
        let idx = self.regions.partition_point(|r| r.end_tb <= tb.0);
        self.regions.get(idx).and_then(|r| {
            if r.start_tb <= tb.0 && tb.0 < r.end_tb {
                Some(r.region_id)
            } else {
                None
            }
        })
    }

    /// Total thread blocks covered by regions.
    pub fn covered_tbs(&self) -> u64 {
        self.regions
            .iter()
            .map(|r| (r.end_tb - r.start_tb) as u64)
            .sum()
    }
}

/// Slice the launch's thread blocks into epochs of `occupancy` TBs each
/// (Eq. 4; the trailing epoch may be short) and compute their features.
pub fn build_epochs(profile: &LaunchProfile, occupancy: u32) -> Vec<Epoch> {
    assert!(occupancy > 0, "occupancy must be positive");
    // TB count originates from spec.num_blocks: u32.
    #[allow(clippy::cast_possible_truncation)]
    let n = profile.tbs.len() as u32;
    let mut epochs = Vec::with_capacity(n.div_ceil(occupancy) as usize);
    let mut start = 0u32;
    let mut index = 0u32;
    while start < n {
        let end = (start + occupancy).min(n);
        let tbs = &profile.tbs[start as usize..end as usize];
        let stall: Vec<f64> = tbs.iter().map(|t| t.stall_probability()).collect();
        let mem: Vec<f64> = tbs.iter().map(|t| t.mem_requests as f64).collect();
        let insts: Vec<f64> = tbs.iter().map(|t| t.warp_insts as f64).collect();
        epochs.push(Epoch {
            index,
            start_tb: start,
            end_tb: end,
            stall_probability: tbpoint_stats::mean(&stall),
            variation_factor: cov(&mem).max(cov(&insts)),
        });
        start = end;
        index += 1;
    }
    epochs
}

/// Cluster epochs, isolate outliers, and build the region table.
///
/// Epochs whose variation factor exceeds the threshold contain outlier
/// thread blocks; they are excluded from every region so the simulator
/// runs them in full (the paper's mst case).
pub fn identify_regions(epochs: &[Epoch], cfg: &IntraConfig) -> RegionTable {
    if epochs.is_empty() {
        return RegionTable::default();
    }
    // Normalise the stall probabilities by their launch-wide mean before
    // applying the distance threshold. The paper's benchmarks have p well
    // under 1 (memory instructions per instruction), so its σ = 0.2 is a
    // ~20%+ relative band; our divergent gathers produce p of several
    // requests per instruction, which would make an absolute 0.2 band
    // far stricter than intended. Mean-normalising (the same move Eq. 2
    // makes for the inter features) keeps σ's meaning scale-free.
    let raw: Vec<f64> = epochs.iter().map(|e| e.stall_probability).collect();
    let mean_p = tbpoint_stats::mean(&raw);
    let points: Vec<Vec<f64>> = raw
        .iter()
        .map(|&p| vec![if mean_p > 0.0 { p / mean_p } else { p }])
        .collect();
    let clustering = hierarchical_cluster(&points, cfg.sigma, Linkage::Complete);

    // Cluster id per epoch; None marks an isolated (outlier) epoch.
    let labels: Vec<Option<u32>> = epochs
        .iter()
        .zip(&clustering.assignments)
        .map(|(e, &c)| {
            if e.variation_factor > cfg.variation_factor {
                None
            } else {
                // Cluster ids are dense over epochs (< u32::MAX epochs).
                #[allow(clippy::cast_possible_truncation)]
                Some(c as u32)
            }
        })
        .collect();

    // Maximal runs of equal Some(label) become regions.
    let mut regions = Vec::new();
    let mut run_start = 0usize;
    while run_start < epochs.len() {
        let Some(label) = labels[run_start] else {
            run_start += 1;
            continue;
        };
        let mut run_end = run_start + 1;
        while run_end < epochs.len() && labels[run_end] == Some(label) {
            run_end += 1;
        }
        regions.push(Region {
            region_id: label,
            start_tb: epochs[run_start].start_tb,
            end_tb: epochs[run_end - 1].end_tb,
        });
        run_start = run_end;
    }
    RegionTable { regions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbpoint_emu::TbProfile;
    use tbpoint_ir::{LaunchId, LaunchSpec};

    /// Hand-built launch profile: each entry is (warp_insts, mem_requests).
    fn launch_profile(tbs: &[(u64, u64)]) -> LaunchProfile {
        LaunchProfile {
            spec: LaunchSpec {
                launch_id: LaunchId(0),
                num_blocks: tbs.len() as u32,
                work_scale: 1.0,
            },
            tbs: tbs
                .iter()
                .enumerate()
                .map(|(i, &(w, m))| TbProfile {
                    tb_id: TbId(i as u32),
                    thread_insts: w * 32,
                    warp_insts: w,
                    mem_insts: m.min(w),
                    mem_requests: m,
                    shared_accesses: 0,
                    barriers: 0,
                    bbv: vec![w],
                })
                .collect(),
        }
    }

    #[test]
    fn epochs_cover_all_tbs() {
        let lp = launch_profile(&[(100, 20); 10]);
        let epochs = build_epochs(&lp, 4);
        assert_eq!(epochs.len(), 3); // 4 + 4 + 2
        assert_eq!(epochs[0].start_tb, 0);
        assert_eq!(epochs[0].end_tb, 4);
        assert_eq!(epochs[2].start_tb, 8);
        assert_eq!(epochs[2].end_tb, 10);
    }

    #[test]
    fn epoch_features_match_paper_example() {
        // Fig. 6: four epochs at stall probability 0.2, four at some other
        // value -> two clusters, two regions (minus outliers).
        let mut tbs = vec![(100u64, 20u64); 16]; // p = 0.2
        tbs.extend(vec![(100u64, 60u64); 16]); // p = 0.6
        let lp = launch_profile(&tbs);
        let epochs = build_epochs(&lp, 4);
        assert_eq!(epochs.len(), 8);
        assert!((epochs[0].stall_probability - 0.2).abs() < 1e-12);
        assert!((epochs[7].stall_probability - 0.6).abs() < 1e-12);
        assert_eq!(epochs[0].variation_factor, 0.0);

        let table = identify_regions(&epochs, &IntraConfig::default());
        assert_eq!(table.regions.len(), 2);
        assert_eq!(table.regions[0].start_tb, 0);
        assert_eq!(table.regions[0].end_tb, 16);
        assert_eq!(table.regions[1].start_tb, 16);
        assert_eq!(table.regions[1].end_tb, 32);
        assert_ne!(table.regions[0].region_id, table.regions[1].region_id);
    }

    #[test]
    fn outlier_epochs_are_excluded() {
        // Homogeneous TBs except epoch 1, which contains one huge outlier
        // TB (mst-style): that epoch must not join any region.
        let mut tbs = vec![(100u64, 20u64); 12];
        tbs[5] = (5000, 20); // outlier inflates warp-inst CoV of epoch 1
        let lp = launch_profile(&tbs);
        let epochs = build_epochs(&lp, 4);
        assert!(
            epochs[1].variation_factor > 0.3,
            "vf = {}",
            epochs[1].variation_factor
        );
        let table = identify_regions(&epochs, &IntraConfig::default());
        // Regions: epoch 0 alone, epochs 2..3 together.
        assert_eq!(table.regions.len(), 2);
        assert_eq!(table.regions[0].start_tb, 0);
        assert_eq!(table.regions[0].end_tb, 4);
        assert_eq!(table.regions[1].start_tb, 8);
        assert_eq!(table.regions[1].end_tb, 12);
        // The outlier epoch's TBs map to no region.
        assert_eq!(table.region_of(TbId(5)), None);
        assert_eq!(table.region_of(TbId(4)), None);
    }

    #[test]
    fn region_of_lookup() {
        let table = RegionTable {
            regions: vec![
                Region {
                    region_id: 0,
                    start_tb: 0,
                    end_tb: 8,
                },
                Region {
                    region_id: 1,
                    start_tb: 12,
                    end_tb: 20,
                },
            ],
        };
        assert_eq!(table.region_of(TbId(0)), Some(0));
        assert_eq!(table.region_of(TbId(7)), Some(0));
        assert_eq!(table.region_of(TbId(8)), None);
        assert_eq!(table.region_of(TbId(11)), None);
        assert_eq!(table.region_of(TbId(12)), Some(1));
        assert_eq!(table.region_of(TbId(19)), Some(1));
        assert_eq!(table.region_of(TbId(25)), None);
        assert_eq!(table.covered_tbs(), 16);
    }

    #[test]
    fn same_cluster_adjacent_runs_merge() {
        // All epochs identical: a single region spanning the launch.
        let lp = launch_profile(&[(100, 30); 20]);
        let epochs = build_epochs(&lp, 4);
        let table = identify_regions(&epochs, &IntraConfig::default());
        assert_eq!(table.regions.len(), 1);
        assert_eq!(table.regions[0].start_tb, 0);
        assert_eq!(table.regions[0].end_tb, 20);
    }

    #[test]
    fn alternating_epochs_form_many_regions() {
        // Epochs alternate stall probability far apart -> every epoch is
        // its own region (consecutive epochs never share a cluster).
        let mut tbs = Vec::new();
        for e in 0..6 {
            let m = if e % 2 == 0 { 10 } else { 90 };
            tbs.extend(vec![(100u64, m as u64); 4]);
        }
        let lp = launch_profile(&tbs);
        let epochs = build_epochs(&lp, 4);
        let table = identify_regions(&epochs, &IntraConfig::default());
        assert_eq!(table.regions.len(), 6);
    }

    #[test]
    fn empty_launch_gives_empty_table() {
        let lp = launch_profile(&[]);
        let epochs = build_epochs(&lp, 4);
        assert!(epochs.is_empty());
        let table = identify_regions(&epochs, &IntraConfig::default());
        assert!(table.regions.is_empty());
        assert_eq!(table.region_of(TbId(0)), None);
    }

    #[test]
    #[should_panic(expected = "occupancy must be positive")]
    fn zero_occupancy_rejected() {
        build_epochs(&launch_profile(&[(1, 1)]), 0);
    }

    #[test]
    fn sigma_controls_region_granularity() {
        // Slightly different stall probabilities: a tight sigma splits,
        // a loose sigma merges.
        let mut tbs = Vec::new();
        for e in 0..4 {
            tbs.extend(vec![(100u64, 20 + e as u64); 4]); // p = .20 .21 .22 .23
        }
        let lp = launch_profile(&tbs);
        let epochs = build_epochs(&lp, 4);
        let tight = identify_regions(
            &epochs,
            &IntraConfig {
                sigma: 0.001,
                variation_factor: 0.3,
            },
        );
        let loose = identify_regions(
            &epochs,
            &IntraConfig {
                sigma: 0.2,
                variation_factor: 0.3,
            },
        );
        assert!(tight.regions.len() > loose.regions.len());
        assert_eq!(loose.regions.len(), 1);
    }
}

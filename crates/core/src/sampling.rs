//! Homogeneous region sampling (Section IV-B2 of the paper): the runtime
//! half of intra-launch sampling, implemented as a simulator hook.
//!
//! State machine per Fig. 7:
//!
//! * **Outside** — simulate normally. When every concurrently resident
//!   thread block maps to the same homogeneous region, *enter* it.
//! * **Warming** — keep simulating; measure sampling-unit IPCs (a unit is
//!   the lifetime of a *designated* TB: the first dispatched TB at start,
//!   then the next dispatched TB each time the current one retires). When
//!   two consecutive units agree within the warming threshold (10%), the
//!   cache state is considered stable: start fast-forwarding.
//! * **Fast-forwarding** — skip every dispatched TB that belongs to the
//!   region, predicting its cycles as `warp_insts / unit_ipc` with the
//!   last warm unit's IPC. A dispatch from a different region (or from no
//!   region) *exits* back to Outside.

use crate::intra::RegionTable;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use tbpoint_emu::LaunchProfile;
use tbpoint_ir::TbId;
use tbpoint_sim::{DispatchDecision, SamplingHook};

/// One event in a sampler's optional event log — the full story of a
/// sampled launch, for diagnostics, visualisation and teaching. Enabled
/// with [`RegionSampler::with_event_log`]; disabled it costs nothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SamplerEvent {
    /// Entered a homogeneous region (all residents share its id).
    RegionEntered {
        /// Region id.
        region: u32,
        /// Cycle of entry.
        cycle: u64,
    },
    /// Left the current region (a foreign block was dispatched).
    RegionExited {
        /// Cycle of exit.
        cycle: u64,
    },
    /// A sampling unit closed with this IPC.
    UnitClosed {
        /// Aggregate IPC over the unit.
        ipc: f64,
        /// Cycle the unit ended.
        cycle: u64,
    },
    /// Warming converged; fast-forwarding began at this predicted IPC.
    FastForwardStarted {
        /// Region id.
        region: u32,
        /// IPC used to price skipped blocks.
        ipc: f64,
        /// Cycle fast-forwarding began.
        cycle: u64,
    },
    /// A thread block was skipped during fast-forward.
    BlockSkipped {
        /// The block.
        tb: u32,
        /// Its profiled warp instructions.
        warp_insts: u64,
    },
}

/// Accounting produced by one sampled launch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct IntraOutcome {
    /// Thread blocks skipped during fast-forward periods.
    pub skipped_tbs: u32,
    /// Warp instructions belonging to skipped thread blocks (from the
    /// profile; they were never issued).
    pub skipped_warp_insts: u64,
    /// Predicted cycles those instructions would have taken, from the
    /// last warm sampling unit's IPC (Table IV's intra-launch term).
    pub predicted_skipped_cycles: f64,
    /// Sampling units completed (diagnostic).
    pub units_observed: u32,
    /// Regions entered (diagnostic).
    pub regions_entered: u32,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Outside,
    Warming(u32),
    FastForward { region: u32, ipc: f64 },
}

/// The intra-launch sampling hook. Borrow one region table + profile per
/// launch; plug into [`tbpoint_sim::simulate_launch`].
pub struct RegionSampler<'a> {
    table: &'a RegionTable,
    profile: &'a LaunchProfile,
    warming_threshold: f64,
    unit_tb_span: u32,
    warming_window: usize,
    state: State,
    resident: BTreeSet<u32>,
    resident_region: Option<u32>, // cached "all residents in this region"
    designated: Option<u32>,
    need_designation: bool,
    unit_tbs_retired: u32,
    unit_start_cycle: u64,
    unit_start_insts: u64,
    warm_ipcs: Vec<f64>,
    outcome: IntraOutcome,
    events: Option<Vec<SamplerEvent>>,
}

/// Default number of trailing sampling units that must agree pairwise
/// within the warming threshold before fast-forwarding begins. The paper
/// compares two consecutive units; see the inline comment in `on_retire`
/// for why the scaled substrate uses three.
pub const WARMING_WINDOW: usize = 3;

/// How many consecutive designated-TB lifetimes make one sampling unit.
///
/// The paper's unit is a single designated TB. Our workloads scale each
/// TB's work down by ~3 orders of magnitude (so full simulations finish
/// in minutes), which makes one TB lifetime shorter than the simulator's
/// queue/cache warm-up transient — consecutive raw units then agree to
/// within 10% while still riding the transient, and fast-forwarding locks
/// in a biased IPC. Spanning a unit over three designated TBs restores
/// the paper's unit-length-to-warm-up ratio (two lifetimes suffice once
/// the simulator's dispatch stagger removes the lockstep start).
/// Recorded in DESIGN.md.
pub const DEFAULT_UNIT_TB_SPAN: u32 = 2;

impl<'a> RegionSampler<'a> {
    /// New sampler with the paper's 10% warming threshold.
    pub fn new(table: &'a RegionTable, profile: &'a LaunchProfile) -> Self {
        Self::with_threshold(table, profile, 0.10)
    }

    /// New sampler with an explicit warming threshold (ablation).
    pub fn with_threshold(
        table: &'a RegionTable,
        profile: &'a LaunchProfile,
        warming_threshold: f64,
    ) -> Self {
        Self::with_options(
            table,
            profile,
            warming_threshold,
            DEFAULT_UNIT_TB_SPAN,
            WARMING_WINDOW,
        )
    }

    /// Fully parameterised constructor (ablation benches).
    pub fn with_options(
        table: &'a RegionTable,
        profile: &'a LaunchProfile,
        warming_threshold: f64,
        unit_tb_span: u32,
        warming_window: usize,
    ) -> Self {
        RegionSampler {
            table,
            profile,
            warming_threshold,
            unit_tb_span: unit_tb_span.max(1),
            warming_window: warming_window.max(2),
            state: State::Outside,
            resident: BTreeSet::new(),
            resident_region: None,
            designated: None,
            need_designation: true,
            unit_tbs_retired: 0,
            unit_start_cycle: 0,
            unit_start_insts: 0,
            warm_ipcs: Vec::new(),
            outcome: IntraOutcome::default(),
            events: None,
        }
    }

    /// The accounting gathered so far (read after simulation).
    pub fn outcome(&self) -> IntraOutcome {
        self.outcome
    }

    /// Enable the event log (see [`SamplerEvent`]).
    pub fn with_event_log(mut self) -> Self {
        self.events = Some(Vec::new());
        self
    }

    /// The recorded events, if logging was enabled.
    pub fn events(&self) -> Option<&[SamplerEvent]> {
        self.events.as_deref()
    }

    fn log(&mut self, ev: SamplerEvent) {
        if let Some(log) = &mut self.events {
            log.push(ev);
        }
    }

    fn recompute_resident_region(&mut self) {
        let mut iter = self.resident.iter();
        let Some(&first) = iter.next() else {
            self.resident_region = None;
            return;
        };
        let r0 = self.table.region_of(TbId(first));
        if r0.is_none() {
            self.resident_region = None;
            return;
        }
        for &tb in iter {
            if self.table.region_of(TbId(tb)) != r0 {
                self.resident_region = None;
                return;
            }
        }
        self.resident_region = r0;
    }

    fn maybe_enter(&mut self, cycle: u64) {
        if self.state != State::Outside {
            return;
        }
        self.recompute_resident_region();
        if let Some(r) = self.resident_region {
            self.state = State::Warming(r);
            self.warm_ipcs.clear();
            self.outcome.regions_entered += 1;
            self.log(SamplerEvent::RegionEntered { region: r, cycle });
        }
    }

    fn exit_region(&mut self, cycle: u64) {
        self.state = State::Outside;
        self.warm_ipcs.clear();
        self.log(SamplerEvent::RegionExited { cycle });
    }
}

impl SamplingHook for RegionSampler<'_> {
    fn on_dispatch(&mut self, tb: TbId, cycle: u64, issued: u64) -> DispatchDecision {
        let region = self.table.region_of(tb);

        // Fast-forward: skip in-region blocks outright.
        if let State::FastForward { region: r, ipc } = self.state {
            if region == Some(r) {
                let insts = self.profile.tbs[tb.0 as usize].warp_insts;
                self.outcome.skipped_tbs += 1;
                self.outcome.skipped_warp_insts += insts;
                if ipc > 0.0 {
                    self.outcome.predicted_skipped_cycles += insts as f64 / ipc;
                }
                self.log(SamplerEvent::BlockSkipped {
                    tb: tb.0,
                    warp_insts: insts,
                });
                return DispatchDecision::Skip;
            }
            // A block from elsewhere: the region exits (Fig. 7).
            self.exit_region(cycle);
        } else if let State::Warming(r) = self.state {
            if region != Some(r) {
                self.exit_region(cycle);
            }
        }

        // Simulate the block.
        self.resident.insert(tb.0);
        if self.need_designation {
            self.designated = Some(tb.0);
            self.need_designation = false;
            // The unit's clock starts with its first designated TB only;
            // later designated TBs extend the same unit.
            if self.unit_tbs_retired == 0 {
                self.unit_start_cycle = cycle;
                self.unit_start_insts = issued;
            }
        }
        self.maybe_enter(cycle);
        DispatchDecision::Simulate
    }

    fn on_retire(&mut self, tb: TbId, cycle: u64, issued: u64) {
        self.resident.remove(&tb.0);

        if self.designated == Some(tb.0) {
            // A designated TB retired; the next simulated dispatch takes
            // over. The unit closes after `unit_tb_span` such lifetimes.
            self.designated = None;
            self.need_designation = true;
            self.unit_tbs_retired += 1;
            if self.unit_tbs_retired < self.unit_tb_span {
                return self.maybe_enter(cycle);
            }
            self.unit_tbs_retired = 0;
            // Close the sampling unit.
            let cycles = cycle.saturating_sub(self.unit_start_cycle);
            let insts = issued.saturating_sub(self.unit_start_insts);
            if cycles > 0 && insts > 0 {
                let unit_ipc = insts as f64 / cycles as f64;
                self.outcome.units_observed += 1;
                self.log(SamplerEvent::UnitClosed {
                    ipc: unit_ipc,
                    cycle,
                });
                if let State::Warming(r) = self.state {
                    self.warm_ipcs.push(unit_ipc);
                    // The paper declares the caches stable when the
                    // current and previous units agree within the
                    // threshold. Our scaled substrate drifts monotonically
                    // in sub-threshold steps during its (relatively much
                    // longer) queue warm-up, so we additionally require
                    // the unit BEFORE the pair to agree — i.e. the last
                    // `WARMING_WINDOW` units must be pairwise within the
                    // band, which rejects a sustained trend.
                    let n = self.warm_ipcs.len();
                    if n >= self.warming_window {
                        let window = &self.warm_ipcs[n - self.warming_window..];
                        let lo = window.iter().cloned().fold(f64::INFINITY, f64::min);
                        let hi = window.iter().cloned().fold(0.0f64, f64::max);
                        if lo > 0.0 && (hi - lo) / lo < self.warming_threshold {
                            // Stable: fast-forward, predicting with the
                            // last warm unit's IPC.
                            self.state = State::FastForward {
                                region: r,
                                ipc: unit_ipc,
                            };
                            self.log(SamplerEvent::FastForwardStarted {
                                region: r,
                                ipc: unit_ipc,
                                cycle,
                            });
                        }
                    }
                }
            }
        }
        self.maybe_enter(cycle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intra::{build_epochs, identify_regions, IntraConfig};
    use tbpoint_emu::profile_launch;
    use tbpoint_ir::{AddrPattern, Kernel, KernelBuilder, LaunchId, LaunchSpec, Op, TripCount};
    use tbpoint_sim::{simulate_launch, GpuConfig, NullSampling};

    /// A perfectly homogeneous kernel: every TB identical.
    fn homogeneous_kernel() -> Kernel {
        let mut b = KernelBuilder::new("homog", 31, 128);
        let body = b.block(&[
            Op::IAlu,
            Op::FAlu,
            Op::LdGlobal(AddrPattern::Coalesced {
                region: 0,
                stride: 4,
            }),
        ]);
        let n = b.loop_(TripCount::Const(30), body);
        b.finish(n)
    }

    fn spec(n: u32) -> LaunchSpec {
        LaunchSpec {
            launch_id: LaunchId(0),
            num_blocks: n,
            work_scale: 1.0,
        }
    }

    #[test]
    fn homogeneous_launch_gets_fast_forwarded() {
        let k = homogeneous_kernel();
        let cfg = GpuConfig::fermi();
        let sp = spec(3000);
        let profile = profile_launch(&k, &sp, 2);
        let occupancy = cfg.system_occupancy(&k);
        let epochs = build_epochs(&profile, occupancy);
        let table = identify_regions(&epochs, &IntraConfig::default());
        assert_eq!(table.regions.len(), 1, "homogeneous kernel -> one region");

        let mut sampler = RegionSampler::new(&table, &profile);
        let r = simulate_launch(&k, &sp, &cfg, &mut sampler, None);
        let out = sampler.outcome();
        assert!(out.skipped_tbs > 0, "fast-forward must engage: {out:?}");
        assert_eq!(r.skipped_tbs, out.skipped_tbs);
        assert!(out.units_observed >= 2, "warming needs at least two units");
        assert_eq!(out.regions_entered, 1);
        assert!(out.predicted_skipped_cycles > 0.0);
        // Accounting consistency: skipped + issued = full workload.
        let total: u64 = profile.tbs.iter().map(|t| t.warp_insts).sum();
        assert_eq!(out.skipped_warp_insts + r.issued_warp_insts, total);
    }

    #[test]
    fn sampled_ipc_close_to_full_ipc() {
        let k = homogeneous_kernel();
        let cfg = GpuConfig::fermi();
        let sp = spec(3000);
        let profile = profile_launch(&k, &sp, 2);
        let epochs = build_epochs(&profile, cfg.system_occupancy(&k));
        let table = identify_regions(&epochs, &IntraConfig::default());

        let full = simulate_launch(&k, &sp, &cfg, &mut NullSampling, None);
        let mut sampler = RegionSampler::new(&table, &profile);
        let sampled = simulate_launch(&k, &sp, &cfg, &mut sampler, None);
        let out = sampler.outcome();

        let full_ipc = full.ipc();
        let predicted_cycles = sampled.cycles as f64 + out.predicted_skipped_cycles;
        let total_insts = (sampled.issued_warp_insts + out.skipped_warp_insts) as f64;
        let predicted_ipc = total_insts / predicted_cycles;
        let err = ((predicted_ipc - full_ipc) / full_ipc).abs();
        assert!(
            err < 0.10,
            "sampling error {:.2}% too high (pred {predicted_ipc:.3} vs full {full_ipc:.3})",
            err * 100.0
        );
        // And it actually saved work.
        assert!(sampled.issued_warp_insts < full.issued_warp_insts / 2);
    }

    #[test]
    fn empty_region_table_simulates_everything() {
        let k = homogeneous_kernel();
        let cfg = GpuConfig::fermi();
        let sp = spec(300);
        let profile = profile_launch(&k, &sp, 2);
        let table = RegionTable::default();
        let mut sampler = RegionSampler::new(&table, &profile);
        let r = simulate_launch(&k, &sp, &cfg, &mut sampler, None);
        assert_eq!(r.skipped_tbs, 0);
        assert_eq!(sampler.outcome().skipped_tbs, 0);
        assert_eq!(sampler.outcome().regions_entered, 0);
    }

    #[test]
    fn event_log_tells_a_consistent_story() {
        let k = homogeneous_kernel();
        let cfg = GpuConfig::fermi();
        let sp = spec(3000);
        let profile = profile_launch(&k, &sp, 2);
        let epochs = build_epochs(&profile, cfg.system_occupancy(&k));
        let table = identify_regions(&epochs, &IntraConfig::default());
        let mut sampler = RegionSampler::new(&table, &profile).with_event_log();
        simulate_launch(&k, &sp, &cfg, &mut sampler, None);
        let out = sampler.outcome();
        let events = sampler.events().expect("logging enabled").to_vec();
        assert!(!events.is_empty());
        // Counts in the log agree with the outcome counters.
        let entered = events
            .iter()
            .filter(|e| matches!(e, SamplerEvent::RegionEntered { .. }))
            .count();
        let skipped = events
            .iter()
            .filter(|e| matches!(e, SamplerEvent::BlockSkipped { .. }))
            .count();
        let units = events
            .iter()
            .filter(|e| matches!(e, SamplerEvent::UnitClosed { .. }))
            .count();
        assert_eq!(entered as u32, out.regions_entered);
        assert_eq!(skipped as u32, out.skipped_tbs);
        assert_eq!(units as u32, out.units_observed);
        // Fast-forward must come after the region entry, and the first
        // skip after the fast-forward start.
        let i_enter = events
            .iter()
            .position(|e| matches!(e, SamplerEvent::RegionEntered { .. }))
            .unwrap();
        let i_ff = events
            .iter()
            .position(|e| matches!(e, SamplerEvent::FastForwardStarted { .. }))
            .expect("homogeneous launch must fast-forward");
        let i_skip = events
            .iter()
            .position(|e| matches!(e, SamplerEvent::BlockSkipped { .. }))
            .unwrap();
        assert!(i_enter < i_ff && i_ff < i_skip);
        // Disabled logging costs nothing and returns None.
        let mut plain = RegionSampler::new(&table, &profile);
        simulate_launch(&k, &sp, &cfg, &mut plain, None);
        assert!(plain.events().is_none());
    }

    #[test]
    fn tight_threshold_delays_fast_forward() {
        let k = homogeneous_kernel();
        let cfg = GpuConfig::fermi();
        let sp = spec(3000);
        let profile = profile_launch(&k, &sp, 2);
        let epochs = build_epochs(&profile, cfg.system_occupancy(&k));
        let table = identify_regions(&epochs, &IntraConfig::default());

        let mut loose = RegionSampler::with_threshold(&table, &profile, 0.5);
        simulate_launch(&k, &sp, &cfg, &mut loose, None);
        let mut tight = RegionSampler::with_threshold(&table, &profile, 1e-6);
        simulate_launch(&k, &sp, &cfg, &mut tight, None);
        assert!(
            tight.outcome().skipped_tbs <= loose.outcome().skipped_tbs,
            "tighter warming threshold must not skip more: tight {:?} loose {:?}",
            tight.outcome(),
            loose.outcome()
        );
    }
}

//! Homogeneous region sampling (Section IV-B2 of the paper): the runtime
//! half of intra-launch sampling, implemented as a simulator hook.
//!
//! State machine per Fig. 7:
//!
//! * **Outside** — simulate normally. When every concurrently resident
//!   thread block maps to the same homogeneous region, *enter* it.
//! * **Warming** — keep simulating; measure sampling-unit IPCs (a unit is
//!   the lifetime of a *designated* TB: the first dispatched TB at start,
//!   then the next dispatched TB each time the current one retires). When
//!   two consecutive units agree within the warming threshold (10%), the
//!   cache state is considered stable: start fast-forwarding.
//! * **Fast-forwarding** — skip every dispatched TB that belongs to the
//!   region, predicting its cycles as `warp_insts / unit_ipc` with the
//!   last warm unit's IPC. A dispatch from a different region (or from no
//!   region) *exits* back to Outside.
//!
//! Samplers are built with [`RegionSampler::builder`]; every state
//! transition is reported to the attached [`tbpoint_obs::Recorder`]
//! (the default [`tbpoint_obs::NullRecorder`] makes that free).

pub mod live;

use crate::error::{invalid, TbError};
use crate::intra::RegionTable;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use tbpoint_emu::LaunchProfile;
use tbpoint_ir::TbId;
use tbpoint_obs::{DegradeReason, EventKind, NullRecorder, Recorder};
use tbpoint_sim::{DispatchDecision, SamplingHook};

/// Accounting produced by one sampled launch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct IntraOutcome {
    /// Thread blocks skipped during fast-forward periods.
    pub skipped_tbs: u32,
    /// Warp instructions belonging to skipped thread blocks (from the
    /// profile; they were never issued).
    pub skipped_warp_insts: u64,
    /// Predicted cycles those instructions would have taken, from the
    /// last warm sampling unit's IPC (Table IV's intra-launch term).
    pub predicted_skipped_cycles: f64,
    /// Sampling units completed (diagnostic).
    pub units_observed: u32,
    /// Regions entered (diagnostic).
    pub regions_entered: u32,
    /// Regions abandoned because their IPC failed to stabilise within
    /// the warming budget (each abandonment is a `DegradedMode` event;
    /// the abandoned region's blocks are simulated in detail).
    pub degraded_regions: u32,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Outside,
    Warming(u32),
    FastForward { region: u32, ipc: f64 },
}

/// The intra-launch sampling hook. Borrow one region table + profile per
/// launch; plug into [`tbpoint_sim::simulate_launch`].
///
/// Construct with [`RegionSampler::new`] (paper defaults) or
/// [`RegionSampler::builder`] for anything else.
pub struct RegionSampler<'a> {
    table: &'a RegionTable,
    profile: &'a LaunchProfile,
    warming_threshold: f64,
    unit_tb_span: u32,
    warming_window: usize,
    warming_budget: Option<u32>,
    recorder: &'a dyn Recorder,
    state: State,
    resident: BTreeSet<u32>,
    resident_region: Option<u32>, // cached "all residents in this region"
    abandoned: BTreeSet<u32>,     // regions whose warming budget ran out
    designated: Option<u32>,
    need_designation: bool,
    unit_tbs_retired: u32,
    unit_start_cycle: u64,
    unit_start_insts: u64,
    warm_ipcs: Vec<f64>,
    outcome: IntraOutcome,
}

/// Default number of trailing sampling units that must agree pairwise
/// within the warming threshold before fast-forwarding begins. The paper
/// compares two consecutive units; see the inline comment in `on_retire`
/// for why the scaled substrate uses three.
pub const WARMING_WINDOW: usize = 3;

/// How many consecutive designated-TB lifetimes make one sampling unit.
///
/// The paper's unit is a single designated TB. Our workloads scale each
/// TB's work down by ~3 orders of magnitude (so full simulations finish
/// in minutes), which makes one TB lifetime shorter than the simulator's
/// queue/cache warm-up transient — consecutive raw units then agree to
/// within 10% while still riding the transient, and fast-forwarding locks
/// in a biased IPC. Spanning a unit over three designated TBs restores
/// the paper's unit-length-to-warm-up ratio (two lifetimes suffice once
/// the simulator's dispatch stagger removes the lockstep start).
/// Recorded in DESIGN.md.
pub const DEFAULT_UNIT_TB_SPAN: u32 = 2;

/// Builder for [`RegionSampler`] — replaces the old positional
/// `with_options` constructor. Settings left untouched keep the paper's
/// defaults; [`RegionSamplerBuilder::build`] validates and reports
/// nonsense values as [`TbError::InvalidConfig`] instead of silently
/// clamping them.
pub struct RegionSamplerBuilder<'a> {
    table: &'a RegionTable,
    profile: &'a LaunchProfile,
    threshold: f64,
    unit_tb_span: u32,
    warming_window: usize,
    warming_budget: Option<u32>,
    recorder: &'a dyn Recorder,
}

impl<'a> RegionSamplerBuilder<'a> {
    /// Warming convergence threshold (paper: 0.10). Must be finite and
    /// positive.
    pub fn threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Designated-TB lifetimes per sampling unit (see
    /// [`DEFAULT_UNIT_TB_SPAN`]). Must be at least 1.
    pub fn unit_tb_span(mut self, span: u32) -> Self {
        self.unit_tb_span = span;
        self
    }

    /// Trailing units that must agree pairwise before fast-forwarding
    /// (see [`WARMING_WINDOW`]). Must be at least 2.
    pub fn warming_window(mut self, window: usize) -> Self {
        self.warming_window = window;
        self
    }

    /// Bound the warming phase: if a region's per-unit IPC has not
    /// converged after this many closed units, the region is *abandoned*
    /// — a `DegradedMode` event is emitted and all of its blocks are
    /// simulated in detail (graceful degradation instead of
    /// fast-forwarding on an IPC that never stabilised). `None` (the
    /// default, and the paper's behaviour) warms indefinitely.
    pub fn warming_budget(mut self, budget: Option<u32>) -> Self {
        self.warming_budget = budget;
        self
    }

    /// Attach a [`Recorder`]; every region entry/exit, unit close,
    /// fast-forward start and skipped block is reported to it. The
    /// default is the free [`NullRecorder`].
    pub fn recorder(mut self, recorder: &'a dyn Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Validate the settings and build the sampler.
    ///
    /// # Errors
    ///
    /// [`TbError::InvalidConfig`] naming the offending field when the
    /// threshold is non-finite or non-positive, `unit_tb_span` is zero,
    /// or `warming_window` is below 2.
    pub fn build(self) -> Result<RegionSampler<'a>, TbError> {
        if !self.threshold.is_finite() || self.threshold <= 0.0 {
            return Err(invalid(
                "warming_threshold",
                format!("must be finite and positive (got {})", self.threshold),
            ));
        }
        if self.unit_tb_span == 0 {
            return Err(invalid("unit_tb_span", "must be at least 1 (got 0)"));
        }
        if self.warming_window < 2 {
            return Err(invalid(
                "warming_window",
                format!(
                    "needs at least 2 units to compare (got {})",
                    self.warming_window
                ),
            ));
        }
        if let Some(budget) = self.warming_budget {
            if (budget as usize) < self.warming_window {
                return Err(invalid(
                    "warming_budget",
                    format!(
                        "must allow at least warming_window = {} units (got {budget})",
                        self.warming_window
                    ),
                ));
            }
        }
        Ok(RegionSampler {
            table: self.table,
            profile: self.profile,
            warming_threshold: self.threshold,
            unit_tb_span: self.unit_tb_span,
            warming_window: self.warming_window,
            warming_budget: self.warming_budget,
            recorder: self.recorder,
            state: State::Outside,
            resident: BTreeSet::new(),
            resident_region: None,
            abandoned: BTreeSet::new(),
            designated: None,
            need_designation: true,
            unit_tbs_retired: 0,
            unit_start_cycle: 0,
            unit_start_insts: 0,
            warm_ipcs: Vec::new(),
            outcome: IntraOutcome::default(),
        })
    }
}

impl<'a> RegionSampler<'a> {
    /// New sampler with the paper's defaults (10% warming threshold,
    /// [`DEFAULT_UNIT_TB_SPAN`], [`WARMING_WINDOW`], no recorder).
    pub fn new(table: &'a RegionTable, profile: &'a LaunchProfile) -> Self {
        // The defaults are valid by construction: 0.10 is finite and
        // positive, DEFAULT_UNIT_TB_SPAN >= 1, WARMING_WINDOW >= 2.
        match Self::builder(table, profile).build() {
            Ok(s) => s,
            // tbpoint-lint: allow(no-panic-in-library)
            Err(_) => unreachable!("paper defaults are always valid"),
        }
    }

    /// Start building a sampler with non-default settings.
    pub fn builder(table: &'a RegionTable, profile: &'a LaunchProfile) -> RegionSamplerBuilder<'a> {
        RegionSamplerBuilder {
            table,
            profile,
            threshold: 0.10,
            unit_tb_span: DEFAULT_UNIT_TB_SPAN,
            warming_window: WARMING_WINDOW,
            warming_budget: None,
            recorder: &NullRecorder,
        }
    }

    /// The accounting gathered so far (read after simulation).
    pub fn outcome(&self) -> IntraOutcome {
        self.outcome
    }

    fn recompute_resident_region(&mut self) {
        let mut iter = self.resident.iter();
        let Some(&first) = iter.next() else {
            self.resident_region = None;
            return;
        };
        let r0 = self.table.region_of(TbId(first));
        if r0.is_none() {
            self.resident_region = None;
            return;
        }
        for &tb in iter {
            if self.table.region_of(TbId(tb)) != r0 {
                self.resident_region = None;
                return;
            }
        }
        self.resident_region = r0;
    }

    fn maybe_enter(&mut self, cycle: u64) {
        if self.state != State::Outside {
            return;
        }
        self.recompute_resident_region();
        if let Some(r) = self.resident_region {
            if self.abandoned.contains(&r) {
                // The region's warming budget already ran out: its blocks
                // stay on the detailed-simulation path.
                return;
            }
            self.state = State::Warming(r);
            self.warm_ipcs.clear();
            self.outcome.regions_entered += 1;
            self.recorder
                .record(cycle, EventKind::RegionEntered { region: r });
        }
    }

    fn exit_region(&mut self, cycle: u64) {
        self.state = State::Outside;
        self.warm_ipcs.clear();
        self.recorder.record(cycle, EventKind::RegionExited);
    }
}

impl SamplingHook for RegionSampler<'_> {
    fn on_dispatch(&mut self, tb: TbId, cycle: u64, issued: u64) -> DispatchDecision {
        let region = self.table.region_of(tb);

        // Fast-forward: skip in-region blocks outright. A block missing
        // from the profile (e.g. a truncated profile file) cannot be
        // fast-forwarded — its instruction count is unknown — so it falls
        // through to detailed simulation instead of indexing out of
        // bounds.
        if let State::FastForward { region: r, ipc } = self.state {
            if region == Some(r) {
                if let Some(tbp) = self.profile.tbs.get(tb.0 as usize) {
                    let insts = tbp.warp_insts;
                    self.outcome.skipped_tbs += 1;
                    self.outcome.skipped_warp_insts += insts;
                    if ipc > 0.0 {
                        self.outcome.predicted_skipped_cycles += insts as f64 / ipc;
                    }
                    self.recorder.record(
                        cycle,
                        EventKind::BlockSkipped {
                            tb: tb.0,
                            warp_insts: insts,
                        },
                    );
                    return DispatchDecision::Skip;
                }
            }
            // A block from elsewhere (or unknown to the profile): the
            // region exits (Fig. 7).
            self.exit_region(cycle);
        } else if let State::Warming(r) = self.state {
            if region != Some(r) {
                self.exit_region(cycle);
            }
        }

        // Simulate the block.
        self.resident.insert(tb.0);
        if self.need_designation {
            self.designated = Some(tb.0);
            self.need_designation = false;
            // The unit's clock starts with its first designated TB only;
            // later designated TBs extend the same unit.
            if self.unit_tbs_retired == 0 {
                self.unit_start_cycle = cycle;
                self.unit_start_insts = issued;
            }
        }
        self.maybe_enter(cycle);
        DispatchDecision::Simulate
    }

    fn on_retire(&mut self, tb: TbId, cycle: u64, issued: u64) {
        self.resident.remove(&tb.0);

        if self.designated == Some(tb.0) {
            // A designated TB retired; the next simulated dispatch takes
            // over. The unit closes after `unit_tb_span` such lifetimes.
            self.designated = None;
            self.need_designation = true;
            self.unit_tbs_retired += 1;
            if self.unit_tbs_retired < self.unit_tb_span {
                return self.maybe_enter(cycle);
            }
            self.unit_tbs_retired = 0;
            // Close the sampling unit.
            let cycles = cycle.saturating_sub(self.unit_start_cycle);
            let insts = issued.saturating_sub(self.unit_start_insts);
            if cycles > 0 && insts > 0 {
                let unit_ipc = insts as f64 / cycles as f64;
                self.outcome.units_observed += 1;
                self.recorder
                    .record(cycle, EventKind::UnitClosed { ipc: unit_ipc });
                if let State::Warming(r) = self.state {
                    self.warm_ipcs.push(unit_ipc);
                    // The paper declares the caches stable when the
                    // current and previous units agree within the
                    // threshold. Our scaled substrate drifts monotonically
                    // in sub-threshold steps during its (relatively much
                    // longer) queue warm-up, so we additionally require
                    // the unit BEFORE the pair to agree — i.e. the last
                    // `WARMING_WINDOW` units must be pairwise within the
                    // band, which rejects a sustained trend.
                    let n = self.warm_ipcs.len();
                    let mut converged = false;
                    if n >= self.warming_window {
                        let window = &self.warm_ipcs[n - self.warming_window..];
                        let lo = window.iter().cloned().fold(f64::INFINITY, f64::min);
                        let hi = window.iter().cloned().fold(0.0f64, f64::max);
                        if lo > 0.0 && (hi - lo) / lo < self.warming_threshold {
                            // Stable: fast-forward, predicting with the
                            // last warm unit's IPC.
                            converged = true;
                            self.state = State::FastForward {
                                region: r,
                                ipc: unit_ipc,
                            };
                            self.recorder.record(
                                cycle,
                                EventKind::FastForwardStarted {
                                    region: r,
                                    ipc: unit_ipc,
                                },
                            );
                        }
                    }
                    // Warming budget: a region still not converged after
                    // `warming_budget` units is abandoned — its IPC is not
                    // trustworthy, so its blocks keep simulating in detail
                    // (graceful degradation) instead of fast-forwarding.
                    if !converged {
                        if let Some(budget) = self.warming_budget {
                            if n >= budget as usize {
                                self.abandoned.insert(r);
                                self.outcome.degraded_regions += 1;
                                self.recorder.record(
                                    cycle,
                                    EventKind::DegradedMode {
                                        reason: DegradeReason::WarmingBudgetExceeded { region: r },
                                    },
                                );
                                self.exit_region(cycle);
                            }
                        }
                    }
                }
            }
        }
        self.maybe_enter(cycle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intra::{build_epochs, identify_regions, IntraConfig};
    use tbpoint_emu::profile_launch;
    use tbpoint_ir::{AddrPattern, Kernel, KernelBuilder, LaunchId, LaunchSpec, Op, TripCount};
    use tbpoint_obs::CollectingRecorder;
    use tbpoint_sim::{simulate_launch, GpuConfig, NullSampling};

    /// A perfectly homogeneous kernel: every TB identical.
    fn homogeneous_kernel() -> Kernel {
        let mut b = KernelBuilder::new("homog", 31, 128);
        let body = b.block(&[
            Op::IAlu,
            Op::FAlu,
            Op::LdGlobal(AddrPattern::Coalesced {
                region: 0,
                stride: 4,
            }),
        ]);
        let n = b.loop_(TripCount::Const(30), body);
        b.finish(n)
    }

    fn spec(n: u32) -> LaunchSpec {
        LaunchSpec {
            launch_id: LaunchId(0),
            num_blocks: n,
            work_scale: 1.0,
        }
    }

    #[test]
    fn homogeneous_launch_gets_fast_forwarded() {
        let k = homogeneous_kernel();
        let cfg = GpuConfig::fermi();
        let sp = spec(3000);
        let profile = profile_launch(&k, &sp, 2);
        let occupancy = cfg.system_occupancy(&k);
        let epochs = build_epochs(&profile, occupancy);
        let table = identify_regions(&epochs, &IntraConfig::default());
        assert_eq!(table.regions.len(), 1, "homogeneous kernel -> one region");

        let mut sampler = RegionSampler::new(&table, &profile);
        let r = simulate_launch(&k, &sp, &cfg, &mut sampler, None);
        let out = sampler.outcome();
        assert!(out.skipped_tbs > 0, "fast-forward must engage: {out:?}");
        assert_eq!(r.skipped_tbs, out.skipped_tbs);
        assert!(out.units_observed >= 2, "warming needs at least two units");
        assert_eq!(out.regions_entered, 1);
        assert!(out.predicted_skipped_cycles > 0.0);
        // Accounting consistency: skipped + issued = full workload.
        let total: u64 = profile.tbs.iter().map(|t| t.warp_insts).sum();
        assert_eq!(out.skipped_warp_insts + r.issued_warp_insts, total);
    }

    #[test]
    fn sampled_ipc_close_to_full_ipc() {
        let k = homogeneous_kernel();
        let cfg = GpuConfig::fermi();
        let sp = spec(3000);
        let profile = profile_launch(&k, &sp, 2);
        let epochs = build_epochs(&profile, cfg.system_occupancy(&k));
        let table = identify_regions(&epochs, &IntraConfig::default());

        let full = simulate_launch(&k, &sp, &cfg, &mut NullSampling, None);
        let mut sampler = RegionSampler::new(&table, &profile);
        let sampled = simulate_launch(&k, &sp, &cfg, &mut sampler, None);
        let out = sampler.outcome();

        let full_ipc = full.ipc();
        let predicted_cycles = sampled.cycles as f64 + out.predicted_skipped_cycles;
        let total_insts = (sampled.issued_warp_insts + out.skipped_warp_insts) as f64;
        let predicted_ipc = total_insts / predicted_cycles;
        let err = ((predicted_ipc - full_ipc) / full_ipc).abs();
        assert!(
            err < 0.10,
            "sampling error {:.2}% too high (pred {predicted_ipc:.3} vs full {full_ipc:.3})",
            err * 100.0
        );
        // And it actually saved work.
        assert!(sampled.issued_warp_insts < full.issued_warp_insts / 2);
    }

    #[test]
    fn empty_region_table_simulates_everything() {
        let k = homogeneous_kernel();
        let cfg = GpuConfig::fermi();
        let sp = spec(300);
        let profile = profile_launch(&k, &sp, 2);
        let table = RegionTable::default();
        let mut sampler = RegionSampler::new(&table, &profile);
        let r = simulate_launch(&k, &sp, &cfg, &mut sampler, None);
        assert_eq!(r.skipped_tbs, 0);
        assert_eq!(sampler.outcome().skipped_tbs, 0);
        assert_eq!(sampler.outcome().regions_entered, 0);
    }

    #[test]
    fn builder_rejects_nonsense_settings() {
        let k = homogeneous_kernel();
        let sp = spec(10);
        let profile = profile_launch(&k, &sp, 1);
        let table = RegionTable::default();

        let err = RegionSampler::builder(&table, &profile)
            .threshold(f64::NAN)
            .build()
            .err()
            .expect("must be rejected");
        assert!(matches!(
            err,
            TbError::InvalidConfig {
                field: "warming_threshold",
                ..
            }
        ));
        let err = RegionSampler::builder(&table, &profile)
            .unit_tb_span(0)
            .build()
            .err()
            .expect("must be rejected");
        assert!(matches!(
            err,
            TbError::InvalidConfig {
                field: "unit_tb_span",
                ..
            }
        ));
        let err = RegionSampler::builder(&table, &profile)
            .warming_window(1)
            .build()
            .err()
            .expect("must be rejected");
        assert!(matches!(
            err,
            TbError::InvalidConfig {
                field: "warming_window",
                ..
            }
        ));
    }

    #[test]
    fn recorder_tells_a_consistent_story() {
        let k = homogeneous_kernel();
        let cfg = GpuConfig::fermi();
        let sp = spec(3000);
        let profile = profile_launch(&k, &sp, 2);
        let epochs = build_epochs(&profile, cfg.system_occupancy(&k));
        let table = identify_regions(&epochs, &IntraConfig::default());
        let rec = CollectingRecorder::new();
        let mut sampler = RegionSampler::builder(&table, &profile)
            .recorder(&rec)
            .build()
            .unwrap();
        simulate_launch(&k, &sp, &cfg, &mut sampler, None);
        let out = sampler.outcome();
        let events = rec.events();
        assert!(!events.is_empty());
        // Counts in the trace agree with the outcome counters.
        let entered = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::RegionEntered { .. }))
            .count();
        let skipped = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::BlockSkipped { .. }))
            .count();
        let units = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::UnitClosed { .. }))
            .count();
        assert_eq!(entered as u32, out.regions_entered);
        assert_eq!(skipped as u32, out.skipped_tbs);
        assert_eq!(units as u32, out.units_observed);
        // Fast-forward must come after the region entry, and the first
        // skip after the fast-forward start.
        let i_enter = events
            .iter()
            .position(|e| matches!(e.kind, EventKind::RegionEntered { .. }))
            .unwrap();
        let i_ff = events
            .iter()
            .position(|e| matches!(e.kind, EventKind::FastForwardStarted { .. }))
            .expect("homogeneous launch must fast-forward");
        let i_skip = events
            .iter()
            .position(|e| matches!(e.kind, EventKind::BlockSkipped { .. }))
            .unwrap();
        assert!(i_enter < i_ff && i_ff < i_skip);
    }

    #[test]
    fn tight_threshold_delays_fast_forward() {
        let k = homogeneous_kernel();
        let cfg = GpuConfig::fermi();
        let sp = spec(3000);
        let profile = profile_launch(&k, &sp, 2);
        let epochs = build_epochs(&profile, cfg.system_occupancy(&k));
        let table = identify_regions(&epochs, &IntraConfig::default());

        let mut loose = RegionSampler::builder(&table, &profile)
            .threshold(0.5)
            .build()
            .unwrap();
        simulate_launch(&k, &sp, &cfg, &mut loose, None);
        let mut tight = RegionSampler::builder(&table, &profile)
            .threshold(1e-6)
            .build()
            .unwrap();
        simulate_launch(&k, &sp, &cfg, &mut tight, None);
        assert!(
            tight.outcome().skipped_tbs <= loose.outcome().skipped_tbs,
            "tighter warming threshold must not skip more: tight {:?} loose {:?}",
            tight.outcome(),
            loose.outcome()
        );
    }
}

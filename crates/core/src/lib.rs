// Tests assert by panicking and compare exact floats on purpose.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

//! # tbpoint-core
//!
//! TBPoint proper: the two sampling techniques of the paper, built on the
//! profiler (`tbpoint-emu`), the timing simulator (`tbpoint-sim`) and the
//! clustering library (`tbpoint-cluster`).
//!
//! * [`inter`] — **inter-launch sampling** (Section III): each kernel
//!   launch becomes a 4-feature vector (Eq. 2: thread instructions, warp
//!   instructions, memory requests, CoV of thread-block sizes, each
//!   normalised by its cross-launch average); hierarchical clustering with
//!   distance threshold σ groups homogeneous launches; the launch closest
//!   to each cluster centre is the simulation point.
//! * [`intra`] — **homogeneous region identification** (Section IV-B1):
//!   thread blocks are grouped into epochs of `system occupancy` size
//!   (Eq. 4), epochs are clustered on their average stall probability
//!   (Eq. 5), epochs with a high variation factor (outlier TBs) are
//!   isolated, and maximal runs of same-cluster epochs become homogeneous
//!   regions stored in a region table (Table III).
//! * [`sampling`] — **homogeneous region sampling** (Section IV-B2): a
//!   [`tbpoint_sim::SamplingHook`] that tracks designated-thread-block
//!   sampling units, enters a region when every resident TB shares its
//!   region id, warms until consecutive unit IPCs agree within 10%, then
//!   fast-forwards (skips) the region's remaining TBs, predicting their
//!   cycles from the last warm unit's IPC.
//! * [`predict`] — the end-to-end pipeline and IPC / sample-size /
//!   skipped-instruction accounting behind Figs. 9-13 (Table IV).
//! * [`sampling::live`] — **live single-pass sampling**: the same
//!   epoch/cluster/region structure detected *online* from the
//!   simulator's retire-time feature stream, with no profiling pass
//!   ([`run_tbpoint_live`], `TbpointConfig::mode = Live`).
//!
//! Entry points return [`TbError`] on invalid configs or mismatched
//! profiles; samplers are built with [`RegionSamplerBuilder`] and report
//! into a [`tbpoint_obs::Recorder`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod inter;
pub mod intra;
pub mod predict;
pub mod sampling;

pub use error::TbError;
pub use inter::{inter_launch_sample, InterConfig, InterResult};
pub use intra::{build_epochs, identify_regions, Epoch, IntraConfig, Region, RegionTable};
pub use predict::{
    run_tbpoint, run_tbpoint_live, run_tbpoint_live_plan, run_tbpoint_live_traced,
    run_tbpoint_live_traced_plan, run_tbpoint_plan, run_tbpoint_traced, run_tbpoint_traced_plan,
    LaunchTrace, SamplingMode, SavingsBreakdown, TbpointConfig, TbpointResult,
};
pub use sampling::live::{LiveOutcome, LiveSampler, LiveSamplerBuilder};
pub use sampling::{IntraOutcome, RegionSampler, RegionSamplerBuilder};
pub use tbpoint_pool::ExecPlan;

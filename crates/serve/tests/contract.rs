//! The serve robustness contract: a batch containing injected panics,
//! deadline overruns and a corrupted cache entry completes with zero
//! crashes and zero silent corruption, and responses are byte-identical
//! across worker counts and across a kill-and-restart cycle.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use tbpoint_obs::{CollectingRecorder, EventKind, NullRecorder};
use tbpoint_pool::ExecPlan;
use tbpoint_serve::{process_text, RetryPolicy, ServeOptions, Service};

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "tbpoint_serve_contract_{tag}_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(pool_workers: usize, cache_dir: Option<PathBuf>) -> ServeOptions {
    ServeOptions {
        plan: ExecPlan {
            sim_jobs: 1,
            pool_workers,
        },
        // Zero backoff: the contract suite cares about outcomes, not
        // pacing.
        retry: RetryPolicy {
            max_backoff_ms: 0,
            ..RetryPolicy::default()
        },
        cache_dir,
        ..ServeOptions::default()
    }
}

/// The mixed-adversity batch from the acceptance criteria: clean work,
/// a transient panic (retry succeeds), a permanent panic (retries
/// exhaust), a deadline overrun, an unknown benchmark and a malformed
/// line.
const ADVERSE_BATCH: &str = r#"{"id":"clean","cmd":"simulate","bench":"bfs"}
{"id":"transient","cmd":"simulate","bench":"stream","fault":"panic-once"}
{"id":"hopeless","cmd":"simulate","bench":"hotspot","fault":"panic"}
{"id":"deadline","cmd":"simulate","bench":"mri","cycle_budget":1}
{"id":"ghost","cmd":"simulate","bench":"no-such-bench"}
this line is not json
{"id":"finale","cmd":"eval","bench":"bfs"}
"#;

fn run_adverse(pool_workers: usize) -> String {
    let mut svc = Service::new(opts(pool_workers, None)).expect("service");
    process_text(&mut svc, ADVERSE_BATCH, &NullRecorder)
}

#[test]
fn adverse_batch_completes_with_structured_outcomes() {
    let out = run_adverse(2);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 7, "one response per input line:\n{out}");

    // Every line parses back and carries the expected status.
    let status_of = |id: &str| -> String {
        let line = lines
            .iter()
            .find(|l| l.contains(&format!("\"id\":\"{id}\"")))
            .unwrap_or_else(|| panic!("no response for {id}:\n{out}"));
        let resp: tbpoint_serve::Response = serde_json::from_str(line).expect("parse response");
        resp.status
    };
    assert_eq!(status_of("clean"), "ok");
    assert_eq!(
        status_of("transient"),
        "ok",
        "retry recovers the panic-once"
    );
    assert_eq!(
        status_of("hopeless"),
        "error",
        "exhausted retries end structured"
    );
    assert_eq!(status_of("deadline"), "deadline-exceeded");
    assert_eq!(status_of("ghost"), "error");
    assert_eq!(status_of("finale"), "ok");
    // The malformed line got a structured error too (id = its seq).
    assert!(
        lines
            .iter()
            .any(|l| l.contains("\"id\":\"5\"") && l.contains("malformed")),
        "malformed line answered, not dropped:\n{out}"
    );
}

#[test]
fn responses_are_byte_identical_across_worker_counts() {
    let serial = run_adverse(1);
    for workers in [2, 4] {
        assert_eq!(
            run_adverse(workers),
            serial,
            "pool_workers={workers} must not change a single byte"
        );
    }
}

#[test]
fn transient_panic_response_matches_a_clean_run_byte_for_byte() {
    // Identical work, with and without the injected transient fault:
    // after the retry the wire bytes must be indistinguishable (only
    // the id field differs by construction, so use the same id).
    let req =
        |fault: &str| format!("{{\"id\":\"x\",\"cmd\":\"simulate\",\"bench\":\"bfs\"{fault}}}\n");
    let mut clean_svc = Service::new(opts(2, None)).expect("service");
    let clean = process_text(&mut clean_svc, &req(""), &NullRecorder);
    let mut faulted_svc = Service::new(opts(2, None)).expect("service");
    let faulted = process_text(
        &mut faulted_svc,
        &req(",\"fault\":\"panic-once\""),
        &NullRecorder,
    );
    assert_eq!(clean, faulted);
}

#[test]
fn admission_control_sheds_load_with_structured_rejections() {
    let mut o = opts(2, None);
    o.max_pending = 2;
    let mut svc = Service::new(o).expect("service");
    let rec = CollectingRecorder::new();
    let batch = "{\"id\":\"a\",\"cmd\":\"simulate\",\"bench\":\"bfs\"}\n\
                 {\"id\":\"b\",\"cmd\":\"status\"}\n\
                 {\"id\":\"c\",\"cmd\":\"simulate\",\"bench\":\"bfs\"}\n\
                 {\"id\":\"d\",\"cmd\":\"simulate\",\"bench\":\"bfs\"}\n";
    let out = process_text(&mut svc, batch, &rec);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 4, "overflow answered, never silently dropped");
    assert!(lines[2].contains("\"status\":\"rejected\""));
    assert!(lines[3].contains("\"status\":\"rejected\""));
    assert_eq!(svc.counters().admitted, 2);
    assert_eq!(svc.counters().rejected, 2);
    let rejected_events = rec
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::RequestRejected { .. }))
        .count();
    assert_eq!(rejected_events, 2);
}

#[test]
fn deadline_and_retry_traffic_is_observable() {
    let mut svc = Service::new(opts(2, None)).expect("service");
    let rec = CollectingRecorder::new();
    let batch = "{\"id\":\"t\",\"cmd\":\"simulate\",\"bench\":\"bfs\",\"fault\":\"panic-once\"}\n\
                 {\"id\":\"d\",\"cmd\":\"simulate\",\"bench\":\"mri\",\"cycle_budget\":1}\n";
    let _ = process_text(&mut svc, batch, &rec);
    let events = rec.events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::RequestRetried { seq: 0, attempt: 1 })),
        "the transient fault's retry is recorded"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::DeadlineExceeded { seq: 1 })),
        "the overrun is recorded"
    );
    assert_eq!(svc.counters().retried, 1);
    assert_eq!(svc.counters().deadline_exceeded, 1);
}

#[test]
fn kill_and_restart_reuses_the_cache_and_answers_identically() {
    let dir = scratch("restart");
    let batch = "{\"id\":\"a\",\"cmd\":\"simulate\",\"bench\":\"bfs\"}\n\
                 {\"id\":\"b\",\"cmd\":\"eval\",\"bench\":\"stream\"}\n";

    // Reference: one uninterrupted service, no cache.
    let mut bare = Service::new(opts(2, None)).expect("service");
    let reference = process_text(&mut bare, batch, &NullRecorder);

    // First incarnation computes and persists; simulate the kill -9 by
    // dropping it mid-life (drop is not a clean shutdown path — the
    // cache is crash-consistent by construction, not by teardown).
    let mut first = Service::new(opts(2, Some(dir.clone()))).expect("service");
    let run1 = process_text(&mut first, batch, &NullRecorder);
    assert_eq!(first.counters().cache_stores, 2);
    assert_eq!(first.counters().cache_hits, 0);
    drop(first);

    // Second incarnation answers from the persisted entries.
    let mut second = Service::new(opts(2, Some(dir.clone()))).expect("service");
    let run2 = process_text(&mut second, batch, &NullRecorder);
    assert_eq!(second.counters().cache_hits, 2, "restart reuses the cache");

    assert_eq!(run1, reference, "caching changes no bytes");
    assert_eq!(run2, reference, "restart + resubmit changes no bytes");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_cache_entry_is_quarantined_recomputed_and_observable() {
    let dir = scratch("corrupt");
    let line = "{\"id\":\"a\",\"cmd\":\"simulate\",\"bench\":\"bfs\"}\n";

    let mut svc = Service::new(opts(1, Some(dir.clone()))).expect("service");
    let clean = process_text(&mut svc, line, &NullRecorder);
    drop(svc);

    // Flip one byte in the (only) persisted entry.
    let entry = std::fs::read_dir(&dir)
        .expect("read dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "json"))
        .expect("one cache entry");
    let mut bytes = std::fs::read(&entry).expect("read entry");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&entry, &bytes).expect("corrupt entry");

    let mut svc = Service::new(opts(1, Some(dir.clone()))).expect("service");
    let rec = CollectingRecorder::new();
    let healed = process_text(&mut svc, line, &rec);
    assert_eq!(healed, clean, "recomputed answer, not the corrupt bytes");
    assert_eq!(svc.counters().cache_quarantined, 1);
    assert_eq!(svc.counters().cache_hits, 0);
    assert!(
        rec.events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::CacheQuarantined { seq: 0 })),
        "quarantine is observable"
    );
    assert!(
        std::fs::read_dir(&dir)
            .expect("read dir")
            .filter_map(Result::ok)
            .any(|e| e.path().to_string_lossy().ends_with(".quarantined")),
        "damaged entry kept aside for forensics"
    );

    // Third run hits the healed entry.
    let mut svc = Service::new(opts(1, Some(dir.clone()))).expect("service");
    let hit = process_text(&mut svc, line, &NullRecorder);
    assert_eq!(hit, clean);
    assert_eq!(svc.counters().cache_hits, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn live_requests_run_single_pass_and_are_deterministic_across_workers() {
    let line = "{\"id\":\"lv\",\"cmd\":\"eval\",\"bench\":\"bfs\",\"live\":true}\n";
    let mut svc = Service::new(opts(1, None)).expect("service");
    let serial = process_text(&mut svc, line, &NullRecorder);
    assert!(
        serial.contains("\"status\":\"ok\""),
        "live eval answers ok:\n{serial}"
    );
    assert!(
        serial.contains("\"eval\":"),
        "live eval carries an eval body:\n{serial}"
    );
    for workers in [2, 4] {
        let mut svc = Service::new(opts(workers, None)).expect("service");
        assert_eq!(
            process_text(&mut svc, line, &NullRecorder),
            serial,
            "pool_workers={workers} must not change a live byte"
        );
    }
}

#[test]
fn live_and_two_phase_requests_cache_under_distinct_keys() {
    let dir = scratch("livecache");
    let batch = "{\"id\":\"tp\",\"cmd\":\"simulate\",\"bench\":\"bfs\"}\n\
                 {\"id\":\"lv\",\"cmd\":\"simulate\",\"bench\":\"bfs\",\"live\":true}\n";
    let mut svc = Service::new(opts(1, Some(dir.clone()))).expect("service");
    let _ = process_text(&mut svc, batch, &NullRecorder);
    assert_eq!(
        svc.counters().cache_stores,
        2,
        "the sampling mode is part of the cache key"
    );
    let mut svc = Service::new(opts(1, Some(dir.clone()))).expect("service");
    let _ = process_text(&mut svc, batch, &NullRecorder);
    assert_eq!(svc.counters().cache_hits, 2, "both modes hit on resubmit");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn status_reports_cache_entry_count_and_total_bytes() {
    let dir = scratch("usage");
    let mut svc = Service::new(opts(1, Some(dir.clone()))).expect("service");
    let text = "{\"id\":\"w\",\"cmd\":\"simulate\",\"bench\":\"bfs\"}\n\
                {\"id\":\"s\",\"cmd\":\"status\"}\n";
    let out = process_text(&mut svc, text, &NullRecorder);
    let status_line = out
        .lines()
        .find(|l| l.contains("\"id\":\"s\""))
        .expect("status response");
    let resp: tbpoint_serve::Response = serde_json::from_str(status_line).expect("parse status");
    let report = resp.service.expect("service payload");
    assert_eq!(
        report.cache_entries, 1,
        "status counts the entry the batch just stored"
    );
    let on_disk: u64 = std::fs::read_dir(&dir)
        .expect("read dir")
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
        .map(|e| e.metadata().map(|m| m.len()).unwrap_or(0))
        .sum();
    assert!(on_disk > 0, "the entry really is on disk");
    assert_eq!(report.cache_bytes, on_disk);

    // With caching disabled the usage figures stay zero.
    let mut bare = Service::new(opts(1, None)).expect("service");
    let out = process_text(
        &mut bare,
        "{\"id\":\"s\",\"cmd\":\"status\"}\n",
        &NullRecorder,
    );
    let resp: tbpoint_serve::Response =
        serde_json::from_str(out.lines().next().expect("line")).expect("parse status");
    let report = resp.service.expect("service payload");
    assert_eq!((report.cache_entries, report.cache_bytes), (0, 0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_drains_its_batch_then_stops_the_loop() {
    let mut svc = Service::new(opts(1, None)).expect("service");
    let text = "{\"id\":\"a\",\"cmd\":\"simulate\",\"bench\":\"bfs\"}\n\
                {\"id\":\"bye\",\"cmd\":\"shutdown\"}\n\
                \n\
                {\"id\":\"late\",\"cmd\":\"simulate\",\"bench\":\"bfs\"}\n";
    let out = process_text(&mut svc, text, &NullRecorder);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(
        lines.len(),
        2,
        "the batch drains; the post-shutdown window never runs"
    );
    assert!(lines[0].contains("\"id\":\"a\"") && lines[0].contains("\"status\":\"ok\""));
    assert!(lines[1].contains("\"id\":\"bye\"") && lines[1].contains("\"status\":\"ok\""));
    assert!(svc.shutting_down());
}

#[test]
fn run_loop_streams_batches_and_exits_on_shutdown() {
    let mut svc = Service::new(opts(1, None)).expect("service");
    let input = "{\"id\":\"a\",\"cmd\":\"status\"}\n\n{\"id\":\"z\",\"cmd\":\"shutdown\"}\n\n";
    let mut out = Vec::new();
    tbpoint_serve::run_loop(&mut svc, input.as_bytes(), &mut out, &NullRecorder).expect("loop");
    let text = String::from_utf8(out).expect("utf8");
    assert_eq!(text.lines().count(), 2);
    assert!(text.lines().next().expect("first").contains("\"service\":"));
}

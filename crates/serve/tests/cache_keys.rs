//! Seeded property tests for the content-addressed cache (satellite of
//! PR 8): distinct request inputs never collide on a cache path, and a
//! byte-flipped entry is always quarantined, never deserialized.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use tbpoint_core::TbpointConfig;
use tbpoint_serve::{cache_name, key_text, Lookup, ResultCache, SimSummary, WorkBody};
use tbpoint_sim::GpuConfig;
use tbpoint_workloads::{all_benchmarks, Scale};

#[test]
fn distinct_inputs_never_collide_on_a_cache_path() {
    // Sweep every axis the key covers: command, benchmark (each has a
    // different kernel and therefore different TraceDeps), scale, and
    // the budget fields of the config. Every distinct input tuple must
    // produce a distinct key text AND a distinct file name.
    let gpu = GpuConfig::fermi();
    let budgets: [(Option<u32>, Option<u64>); 4] = [
        (None, None),
        (Some(32), None),
        (None, Some(100_000)),
        (Some(32), Some(100_000)),
    ];
    let mut seen: BTreeMap<String, String> = BTreeMap::new(); // name -> key
    let mut tuples = 0usize;
    for scale in [Scale::Tiny, Scale::Dev] {
        for bench in all_benchmarks(scale) {
            for cmd in ["simulate", "eval"] {
                for (warming_budget, cycle_budget) in budgets {
                    let cfg = TbpointConfig {
                        warming_budget,
                        cycle_budget,
                        ..TbpointConfig::default()
                    };
                    let key = key_text(cmd, &bench, scale, &cfg, &gpu).expect("key");
                    let name = cache_name(cmd, bench.name, &key);
                    if let Some(prev) = seen.insert(name.clone(), key.clone()) {
                        assert_eq!(
                            prev, key,
                            "two different keys collided on cache path {name}"
                        );
                        panic!("duplicate input tuple produced twice: {name}");
                    }
                    tuples += 1;
                }
            }
        }
    }
    assert_eq!(seen.len(), tuples, "every tuple landed on its own path");
    assert!(
        tuples >= 150,
        "the sweep actually covered the space ({tuples})"
    );
}

#[test]
fn trace_deps_and_config_reach_the_key_text() {
    // The key must move when the dependence summary moves (different
    // kernels) and when only a budget field moves (same kernel).
    let gpu = GpuConfig::fermi();
    let cfg = TbpointConfig::default();
    let benches = all_benchmarks(Scale::Tiny);
    let a = key_text("simulate", &benches[0], Scale::Tiny, &cfg, &gpu).expect("key");
    let b = key_text("simulate", &benches[1], Scale::Tiny, &cfg, &gpu).expect("key");
    assert_ne!(a, b, "different kernels, different keys");

    let budgeted = TbpointConfig {
        cycle_budget: Some(7),
        ..cfg
    };
    let c = key_text("simulate", &benches[0], Scale::Tiny, &budgeted, &gpu).expect("key");
    assert_ne!(a, c, "a budget override alone must re-key the entry");
    assert_ne!(
        cache_name("simulate", benches[0].name, &a),
        cache_name("simulate", benches[0].name, &c)
    );
}

fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "tbpoint_serve_keys_{tag}_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn any_byte_flip_is_quarantined_never_deserialized() {
    let dir = scratch("flip");
    let (cache, _) = ResultCache::open(&dir).expect("open");
    let body = WorkBody::Sim(SimSummary {
        predicted_ipc: 2.5,
        predicted_total_cycles: 1024.0,
        sample_size: 0.25,
        launches_simulated: 1,
        launches_total: 4,
        degraded_launches: 0,
    });
    cache.store("entry.json", &body).expect("store");
    let path = cache.entry_path("entry.json");
    let pristine = std::fs::read(&path).expect("read");

    // 64 seeded positions across the sealed file (body, trailer and the
    // final newline are all fair game), plus both endpoints.
    let len = pristine.len() as u64;
    #[allow(clippy::cast_possible_truncation)] // index < len, which is a usize
    let mut positions: Vec<usize> = (0..64u64)
        .map(|i| tbpoint_stats::unit_index(&[0xF11B, i], len) as usize)
        .collect();
    positions.push(0);
    positions.push(pristine.len() - 1);

    for (round, pos) in positions.into_iter().enumerate() {
        let mut damaged = pristine.clone();
        damaged[pos] ^= 1u8 << (round % 8);
        std::fs::write(&path, &damaged).expect("plant damage");
        match cache.lookup("entry.json") {
            Lookup::Quarantined => {}
            Lookup::Hit(_) => panic!("byte flip at {pos} was served as a hit"),
            Lookup::Miss => panic!("byte flip at {pos} vanished instead of quarantining"),
        }
        // Quarantine renamed it aside; restore the pristine entry for
        // the next round.
        std::fs::write(&path, &pristine).expect("restore");
        assert_eq!(
            cache.lookup("entry.json"),
            Lookup::Hit(body.clone()),
            "pristine entry still verifies after round {round}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

//! `tbpoint-serve`: the fault-tolerant long-running simulation service.
//!
//! PRs 1–7 built a *pipeline*: one invocation, one result, exit. This
//! crate wraps that pipeline in a *service* — `tbpoint serve` reads
//! JSONL requests from stdin in blank-line-delimited batch windows,
//! schedules the work requests onto the supervised
//! [`tbpoint_pool`] and answers one JSONL response per request — with
//! the robustness properties a long-running process needs:
//!
//! - **Worker supervision** ([`service`]): every unit runs under
//!   `catch_unwind` containment ([`tbpoint_pool::run_supervised`]), so
//!   a panicking request yields a structured error for *that* index
//!   while the batch keeps draining; contained panics are transient and
//!   get deterministic bounded retry with seeded backoff ([`retry`]).
//! - **Deadlines and admission control**: per-request cycle/warming
//!   budgets layer onto `TbpointConfig`, overruns come back as
//!   `deadline-exceeded`; a bounded queue load-sheds overflow with a
//!   structured `rejected` response — never a silent drop — and a
//!   `shutdown` request drains its batch before the loop exits.
//! - **A self-healing result cache** ([`cache`]): content-addressed on
//!   the full request inputs, persisted via `write_atomic` + sealed FNV
//!   manifest, re-verified on every read; corrupt entries are
//!   quarantined and recomputed, never served.
//! - **Observability**: admission, rejection, retry, deadline and cache
//!   traffic are recorded as [`tbpoint_obs::EventKind`] events and
//!   counters on the coordinator thread, in deterministic order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)
)]

pub mod cache;
pub mod proto;
pub mod retry;
pub mod service;

pub use cache::{cache_name, key_text, Lookup, ResultCache};
pub use proto::{
    parse_request, Command, EvalSummary, InjectedFault, Request, Response, SimSummary,
    StatusReport, WorkBody,
};
pub use retry::RetryPolicy;
pub use service::{process_text, run_loop, ServeOptions, Service};

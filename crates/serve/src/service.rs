//! The request loop: admission control, supervised scheduling,
//! deadlines, retry, cache, and drain-then-exit shutdown.
//!
//! # Request lifecycle
//!
//! ```text
//!            ┌──────────┐ queue full ┌──────────┐
//! parsed ──▶ │ ADMITTED │───────────▶│ REJECTED │ (structured response,
//!            └────┬─────┘            └──────────┘  never a silent drop)
//!                 │ work (simulate/eval)
//!                 ▼
//!            ┌──────────┐  hit  ┌─────────┐
//!            │  CACHE   │──────▶│ SERVED  │ (bytes identical to computed)
//!            └────┬─────┘       └─────────┘
//!   miss / quarantined
//!                 ▼
//!            ┌──────────┐ panic (transient) ┌─────────┐ retries left
//!            │ COMPUTE  │──────────────────▶│ RETRIED │──▶ COMPUTE
//!            └────┬─────┘                   └────┬────┘
//!                 │                              │ exhausted
//!        ok ▼     │ TbError (permanent)          ▼
//!     ┌────────┐  ▼                         ┌────────┐
//!     │ SERVED │ ┌────────────────────┐     │ FAILED │
//!     └────────┘ │ FAILED / DEADLINE- │     └────────┘
//!                │ EXCEEDED           │
//!                └────────────────────┘
//! ```
//!
//! # Determinism contract
//!
//! Responses are a pure function of the request lines: work fans out on
//! the supervised pool ([`tbpoint_pool::run_supervised`]) whose outcome
//! vector is index-canonical at every worker count; retry membership is
//! derived from that vector; cache hits deserialize exactly the bytes a
//! fresh computation would produce; obs events are recorded on the
//! coordinator thread in arrival order. The contract suite asserts
//! byte-identical responses across `--pool-workers 1/2/4` and across a
//! kill-and-restart cycle.
//!
//! The single deliberate exception is the optional per-request
//! `wall_budget_ms` guardrail — wall clocks are not deterministic, so
//! it is consulted only between retry rounds (a request that already
//! produced a result is never revoked) and contract tests never set it.

use crate::cache::{cache_name, key_text, Lookup, ResultCache};
use crate::proto::{
    parse_request, Command, EvalSummary, InjectedFault, Request, Response, SimSummary,
    StatusReport, WorkBody,
};
use crate::retry::RetryPolicy;
use std::path::PathBuf;
use tbpoint_core::{run_tbpoint_live_plan, run_tbpoint_plan, SamplingMode, TbError, TbpointConfig};
use tbpoint_emu::profile_run;
use tbpoint_obs::{EventKind, Recorder};
use tbpoint_pool::{run_supervised, ExecPlan, UnitError};
use tbpoint_sim::{simulate_run, GpuConfig, NullSampling};
use tbpoint_workloads::benchmark_by_name;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Execution plan; work requests fan out across
    /// `plan.pool_workers`, each running with the unit-level plan.
    pub plan: ExecPlan,
    /// Simulated GPU (default: the paper's Fermi, Table V).
    pub gpu: GpuConfig,
    /// Baseline pipeline config requests override per-field. The
    /// default enables a warming budget so a destabilised region
    /// degrades instead of warming forever — a service must bound
    /// every request.
    pub config: TbpointConfig,
    /// Bounded-queue depth per batch window; arrivals beyond it are
    /// load-shed with a structured `rejected` response.
    pub max_pending: usize,
    /// Transient-failure retry shape.
    pub retry: RetryPolicy,
    /// Result-cache directory (`None` disables caching).
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            plan: ExecPlan::serial(),
            gpu: GpuConfig::fermi(),
            config: TbpointConfig {
                warming_budget: Some(32),
                ..TbpointConfig::default()
            },
            max_pending: 256,
            retry: RetryPolicy::default(),
            cache_dir: None,
        }
    }
}

/// What one work unit produced, with the cache-path facts the
/// coordinator turns into obs events (units must not touch the shared
/// recorder: events are recorded in arrival order on the coordinator).
struct WorkDone {
    body: Result<WorkBody, TbError>,
    cache_hit: bool,
    quarantined: bool,
    stored: bool,
}

/// The long-running request service.
pub struct Service {
    opts: ServeOptions,
    cache: Option<ResultCache>,
    counters: StatusReport,
    next_seq: u64,
    shutdown: bool,
}

impl Service {
    /// Build a service, opening (and crash-sweeping) the cache
    /// directory when one is configured.
    ///
    /// # Errors
    ///
    /// I/O errors opening the cache directory.
    pub fn new(opts: ServeOptions) -> std::io::Result<Self> {
        let cache = match &opts.cache_dir {
            Some(dir) => Some(ResultCache::open(dir)?.0),
            None => None,
        };
        Ok(Service {
            opts,
            cache,
            counters: StatusReport::default(),
            next_seq: 0,
            shutdown: false,
        })
    }

    /// Counters so far (also the `status` payload).
    pub fn counters(&self) -> &StatusReport {
        &self.counters
    }

    /// Whether a `shutdown` request has been drained.
    pub fn shutting_down(&self) -> bool {
        self.shutdown
    }

    /// Committed result-cache entries on disk right now: `(count,
    /// total bytes)`. Staging (`.tmp`) and `.quarantined` files are
    /// not entries; `(0, 0)` when caching is disabled. Reported in
    /// the `status` payload so operators can watch cache growth
    /// without shelling into the cache directory.
    pub fn cache_usage(&self) -> (u64, u64) {
        let Some(cache) = &self.cache else {
            return (0, 0);
        };
        let Ok(dir) = std::fs::read_dir(cache.dir()) else {
            return (0, 0);
        };
        let mut entries = 0u64;
        let mut bytes = 0u64;
        for e in dir.flatten() {
            if !e.file_name().to_string_lossy().ends_with(".json") {
                continue;
            }
            if let Ok(meta) = e.metadata() {
                if meta.is_file() {
                    entries += 1;
                    bytes += meta.len();
                }
            }
        }
        (entries, bytes)
    }

    /// Process one batch window of request lines and return their
    /// responses in arrival order. See the module docs for the
    /// lifecycle and determinism contract.
    pub fn run_batch(&mut self, lines: &[String], rec: &impl Recorder) -> Vec<Response> {
        // Parse, assigning arrival numbers; a malformed line consumes
        // its seq and admission slot like any other arrival.
        let parsed: Vec<(u64, Result<Request, String>)> = lines
            .iter()
            .map(|line| {
                let seq = self.next_seq;
                self.next_seq += 1;
                (seq, parse_request(line, seq))
            })
            .collect();

        // Admission control: at most `max_pending` arrivals enter this
        // batch window; the overflow is load-shed, deterministically by
        // arrival order, each with a structured response.
        let mut responses: Vec<Option<Response>> = vec![None; parsed.len()];
        let mut admitted: Vec<(usize, Request)> = Vec::new();
        for (slot, (seq, result)) in parsed.into_iter().enumerate() {
            if slot >= self.opts.max_pending {
                self.counters.rejected += 1;
                rec.record(0, EventKind::RequestRejected { seq });
                let (id, cmd, bench) = match &result {
                    Ok(r) => (r.id.clone(), r.cmd.name(), r.bench.clone()),
                    Err(_) => (seq.to_string(), "", String::new()),
                };
                let mut resp = Response::empty(id, seq, "rejected", cmd, &bench);
                resp.error = format!(
                    "queue full: batch window holds {} requests",
                    self.opts.max_pending
                );
                responses[slot] = Some(resp);
                continue;
            }
            match result {
                Ok(req) => {
                    self.counters.admitted += 1;
                    rec.record(0, EventKind::RequestAdmitted { seq });
                    if req.cmd == Command::Shutdown {
                        self.shutdown = true;
                    }
                    admitted.push((slot, req));
                }
                Err(msg) => {
                    let mut resp = Response::empty(seq.to_string(), seq, "error", "", "");
                    resp.error = msg;
                    responses[slot] = Some(resp);
                }
            }
        }

        // Schedule the work requests on the supervised pool, with
        // deterministic bounded retry for contained panics.
        let mut work: Vec<&Request> = Vec::new();
        let mut work_slots: Vec<usize> = Vec::new();
        for (slot, req) in &admitted {
            if matches!(req.cmd, Command::Simulate | Command::Eval) {
                work.push(req);
                work_slots.push(*slot);
            }
        }
        let outcomes = self.run_work_batch(&work, rec);
        for (k, done) in outcomes.into_iter().enumerate() {
            responses[work_slots[k]] = Some(self.finish_work(work[k], done, rec));
        }

        // Control requests answer after the batch's work has settled,
        // so `status` reflects the end-of-batch counters.
        for (slot, req) in &admitted {
            match req.cmd {
                Command::Status => {
                    let mut resp = Response::empty(req.id.clone(), req.seq, "ok", "status", "");
                    let mut report = self.counters;
                    (report.cache_entries, report.cache_bytes) = self.cache_usage();
                    resp.service = Some(report);
                    responses[*slot] = Some(resp);
                }
                Command::Shutdown => {
                    responses[*slot] = Some(Response::empty(
                        req.id.clone(),
                        req.seq,
                        "ok",
                        "shutdown",
                        "",
                    ));
                }
                Command::Simulate | Command::Eval => {}
            }
        }

        rec.counter("serve_batches", 1);
        responses
            .into_iter()
            .map(|r| match r {
                Some(r) => r,
                // Unreachable by construction: every slot is filled by
                // exactly one of the arms above.
                None => Response::empty(String::new(), 0, "error", "", ""),
            })
            .collect()
    }

    /// Run `work` with supervision and retry; outcomes in `work` order.
    fn run_work_batch(&mut self, work: &[&Request], rec: &impl Recorder) -> Vec<WorkDone> {
        let mut outcomes: Vec<Option<WorkDone>> = Vec::new();
        outcomes.resize_with(work.len(), || None);
        let mut pending: Vec<usize> = (0..work.len()).collect();
        let batch_start = wall_clock_start();

        for attempt in 0..=self.opts.retry.max_retries {
            if pending.is_empty() {
                break;
            }
            if attempt > 0 {
                // The wall guardrail: requests that asked for one and
                // have already burned it are finalised as
                // deadline-exceeded instead of retried. Checked only
                // here — between rounds — so it can never revoke a
                // result, and contract tests never set it.
                let elapsed = wall_elapsed_ms(&batch_start);
                pending.retain(|&i| {
                    let overran = work[i].wall_budget_ms.is_some_and(|b| elapsed > b);
                    if overran {
                        outcomes[i] = Some(WorkDone {
                            body: Err(TbError::BudgetExceeded {
                                launch: 0,
                                budget_cycles: 0,
                            }),
                            cache_hit: false,
                            quarantined: false,
                            stored: false,
                        });
                    }
                    !overran
                });
                for &i in &pending {
                    self.counters.retried += 1;
                    rec.record(
                        0,
                        EventKind::RequestRetried {
                            seq: work[i].seq,
                            attempt,
                        },
                    );
                }
                if let Some(&i) = pending.first() {
                    let ms = self.opts.retry.backoff_ms(work[i].seq, attempt);
                    if ms > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(ms));
                    }
                }
            }
            let opts = &self.opts;
            let cache = self.cache.as_ref();
            let round = run_supervised(
                opts.plan.pool_workers,
                pending.len(),
                |k| -> Result<WorkDone, TbError> {
                    Ok(run_work(work[pending[k]], attempt, opts, cache))
                },
            );
            let mut still = Vec::new();
            for (k, r) in round.into_iter().enumerate() {
                let i = pending[k];
                match r {
                    Ok(done) => outcomes[i] = Some(done),
                    Err(UnitError::Panicked(msg)) => {
                        if attempt < self.opts.retry.max_retries {
                            still.push(i); // transient: retry next round
                        } else {
                            outcomes[i] = Some(WorkDone {
                                body: Err(TbError::InvalidConfig {
                                    field: "request",
                                    reason: format!("unit panicked: {msg}"),
                                }),
                                cache_hit: false,
                                quarantined: false,
                                stored: false,
                            });
                        }
                    }
                    // run_work returns WorkDone for every TbError, so a
                    // Failed here cannot occur; keep it contained
                    // anyway.
                    Err(UnitError::Failed(e)) => {
                        outcomes[i] = Some(WorkDone {
                            body: Err(e),
                            cache_hit: false,
                            quarantined: false,
                            stored: false,
                        });
                    }
                }
            }
            pending = still;
        }

        outcomes
            .into_iter()
            .map(|o| match o {
                Some(done) => done,
                // Unreachable: the loop finalises every index.
                None => WorkDone {
                    body: Err(TbError::InvalidConfig {
                        field: "request",
                        reason: "work unit never ran".to_string(),
                    }),
                    cache_hit: false,
                    quarantined: false,
                    stored: false,
                },
            })
            .collect()
    }

    /// Turn a settled work outcome into its response, recording the
    /// cache and deadline events in arrival order.
    fn finish_work(&mut self, req: &Request, done: WorkDone, rec: &impl Recorder) -> Response {
        if done.quarantined {
            self.counters.cache_quarantined += 1;
            rec.record(0, EventKind::CacheQuarantined { seq: req.seq });
            rec.counter("serve_cache_quarantined", 1);
        }
        if done.cache_hit {
            self.counters.cache_hits += 1;
            rec.record(0, EventKind::CacheHit { seq: req.seq });
            rec.counter("serve_cache_hit", 1);
        }
        if done.stored {
            self.counters.cache_stores += 1;
        }
        let mut resp = Response::empty(req.id.clone(), req.seq, "ok", req.cmd.name(), &req.bench);
        match done.body {
            Ok(WorkBody::Sim(s)) => {
                self.counters.completed_ok += 1;
                resp.simulate = Some(s);
            }
            Ok(WorkBody::Eval(e)) => {
                self.counters.completed_ok += 1;
                resp.eval = Some(e);
            }
            Err(e) => {
                let deadline = matches!(e, TbError::BudgetExceeded { .. });
                if deadline {
                    self.counters.deadline_exceeded += 1;
                    rec.record(0, EventKind::DeadlineExceeded { seq: req.seq });
                    resp.status = "deadline-exceeded".to_string();
                } else {
                    self.counters.failed += 1;
                    resp.status = "error".to_string();
                }
                resp.error = e.to_string();
            }
        }
        resp
    }
}

/// Wall-clock anchor for the between-rounds guardrail. Isolated here —
/// with the lint escape hatch — because wall time is the one
/// deliberately nondeterministic input the service consumes, and only
/// for pacing decisions, never for results.
fn wall_clock_start() -> std::time::Instant {
    // tbpoint-lint: allow(no-nondeterminism)
    std::time::Instant::now()
}

fn wall_elapsed_ms(start: &std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX)
}

/// Execute one work request (cache → fault injection → pipeline →
/// cache write-back). Runs inside a supervised pool unit: a panic here
/// is contained to this request's index.
fn run_work(
    req: &Request,
    attempt: u32,
    opts: &ServeOptions,
    cache: Option<&ResultCache>,
) -> WorkDone {
    let mut done = WorkDone {
        body: Err(TbError::InvalidConfig {
            field: "bench",
            reason: String::new(),
        }),
        cache_hit: false,
        quarantined: false,
        stored: false,
    };

    let Some(bench) = benchmark_by_name(&req.bench, req.scale) else {
        done.body = Err(TbError::InvalidConfig {
            field: "bench",
            reason: format!("unknown benchmark `{}`", req.bench),
        });
        return done;
    };
    let cfg = TbpointConfig {
        warming_budget: req.warming_budget.or(opts.config.warming_budget),
        cycle_budget: req.cycle_budget.or(opts.config.cycle_budget),
        mode: if req.live {
            SamplingMode::Live
        } else {
            opts.config.mode
        },
        ..opts.config
    };

    // Fault-free requests consult the cache; fault-injected ones bypass
    // it entirely so injected damage never pollutes durable state.
    let entry = if req.fault.is_none() {
        cache.and_then(
            |c| match key_text(req.cmd.name(), &bench, req.scale, &cfg, &opts.gpu) {
                Ok(key) => Some((c, cache_name(req.cmd.name(), bench.name, &key))),
                Err(_) => None,
            },
        )
    } else {
        None
    };
    if let Some((cache, name)) = &entry {
        match cache.lookup(name) {
            Lookup::Hit(body) => {
                done.body = Ok(body);
                done.cache_hit = true;
                return done;
            }
            Lookup::Quarantined => done.quarantined = true,
            Lookup::Miss => {}
        }
    }

    if let Some(fault) = req.fault {
        let fire = match fault {
            InjectedFault::Panic => true,
            InjectedFault::PanicOnce => attempt == 0,
        };
        if fire {
            // The injected transient fault the supervised pool and the
            // retry policy exist to contain.
            // tbpoint-lint: allow(no-panic-in-library)
            panic!("injected request panic");
        }
    }

    // Live requests skip the profiling pass entirely — the online
    // detector learns from the retire stream — which is the whole
    // point of accepting `"live": true` on a service request.
    let tbp = match cfg.mode {
        SamplingMode::Live => run_tbpoint_live_plan(&bench.run, &cfg, &opts.gpu, opts.plan.unit()),
        SamplingMode::TwoPhase => {
            let profile = profile_run(&bench.run, 1);
            run_tbpoint_plan(&bench.run, &profile, &cfg, &opts.gpu, opts.plan.unit())
        }
    };
    let tbp = match tbp {
        Ok(r) => r,
        Err(e) => {
            done.body = Err(e);
            return done;
        }
    };
    let body = match req.cmd {
        Command::Eval => {
            let full_ipc =
                simulate_run(&bench.run, &opts.gpu, &mut NullSampling, None).overall_ipc();
            WorkBody::Eval(EvalSummary {
                full_ipc,
                error_pct: tbp.error_vs(full_ipc),
                tbpoint: SimSummary::of(&tbp),
            })
        }
        _ => WorkBody::Sim(SimSummary::of(&tbp)),
    };
    if let Some((cache, name)) = &entry {
        done.stored = cache.store(name, &body).is_ok();
    }
    done.body = Ok(body);
    done
}

/// Split request text into blank-line-delimited batch windows, process
/// each, and return all response lines joined (one per request, in
/// arrival order, trailing newline). Stops after the batch that drains
/// a `shutdown` request.
pub fn process_text(svc: &mut Service, text: &str, rec: &impl Recorder) -> String {
    let mut out = String::new();
    let mut batch: Vec<String> = Vec::new();
    let flush = |svc: &mut Service, batch: &mut Vec<String>, out: &mut String| {
        if batch.is_empty() {
            return;
        }
        for resp in svc.run_batch(batch, rec) {
            out.push_str(&resp.to_line());
            out.push('\n');
        }
        batch.clear();
    };
    for line in text.lines() {
        if line.trim().is_empty() {
            flush(svc, &mut batch, &mut out);
            if svc.shutting_down() {
                return out;
            }
        } else {
            batch.push(line.to_string());
        }
    }
    flush(svc, &mut batch, &mut out);
    out
}

/// The interactive request loop: read JSONL from `input`, answer on
/// `output` after each blank-line-delimited batch window (or EOF),
/// exit after draining a `shutdown` request. Responses are flushed per
/// batch so a caller driving stdin sees answers as windows close.
///
/// # Errors
///
/// I/O errors reading the input or writing responses.
pub fn run_loop(
    svc: &mut Service,
    input: impl std::io::BufRead,
    output: &mut impl std::io::Write,
    rec: &impl Recorder,
) -> std::io::Result<()> {
    let mut batch: Vec<String> = Vec::new();
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            if !batch.is_empty() {
                for resp in svc.run_batch(&batch, rec) {
                    writeln!(output, "{}", resp.to_line())?;
                }
                output.flush()?;
                batch.clear();
            }
            if svc.shutting_down() {
                return Ok(());
            }
        } else {
            batch.push(line);
        }
    }
    if !batch.is_empty() {
        for resp in svc.run_batch(&batch, rec) {
            writeln!(output, "{}", resp.to_line())?;
        }
        output.flush()?;
    }
    Ok(())
}

//! The self-healing content-addressed result cache.
//!
//! **Keying.** An entry's name is derived from everything that can
//! change the answer: the command, the benchmark's full kernel run (the
//! serialized program tree and launch roster), its dependence-exact
//! [`TraceDeps`](tbpoint_emu::TraceDeps) summary, the complete
//! `TbpointConfig` (so cycle/warming budgets hash differently), the GPU
//! config and the scale. The canonical key text is FNV-1a-64 hashed
//! into the file name — `<cmd>-<bench>-<fnv16hex>.json` — so identical
//! requests are O(1) lookups and *any* input difference lands on a
//! different path.
//!
//! **Self-healing.** Entries are written with
//! [`tbpoint_obs::write_atomic`] and sealed with the FNV integrity
//! trailer ([`tbpoint_obs::seal`]). Every read re-verifies the
//! checksum; an entry that fails verification — bit rot, truncation, a
//! torn copy — is **quarantined** (renamed to `<name>.quarantined`) and
//! reported as a miss, so the service recomputes and rewrites it.
//! Corrupt bytes are never deserialized into a response.
//!
//! **Concurrency.** Lookups are lock-free (atomic rename means a reader
//! sees the old entry or the new one, never a torn one). Writes and
//! quarantines serialise on an internal mutex so two pool workers
//! finishing identical requests never race on the same staging file.

use crate::proto::WorkBody;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, PoisonError};
use tbpoint_core::TbpointConfig;
use tbpoint_emu::TraceDeps;
use tbpoint_sim::GpuConfig;
use tbpoint_workloads::{Benchmark, Scale};

/// What a cache read found.
#[derive(Debug, Clone, PartialEq)]
pub enum Lookup {
    /// A verified entry, deserialized.
    Hit(WorkBody),
    /// No entry on disk.
    Miss,
    /// An entry was present but failed checksum re-verification (or
    /// verified yet no longer parsed); it has been renamed aside and
    /// the caller must recompute.
    Quarantined,
}

/// Build the canonical key text for one work request. Deterministic
/// serialization (the vendored `serde_json` emits fields in declaration
/// order) makes the hash a pure function of the inputs.
///
/// # Errors
///
/// The message of the (never expected) serialization failure.
pub fn key_text(
    cmd: &str,
    bench: &Benchmark,
    scale: Scale,
    cfg: &TbpointConfig,
    gpu: &GpuConfig,
) -> Result<String, String> {
    let deps = TraceDeps::of(&bench.run.kernel);
    let run_json = serde_json::to_string(&bench.run).map_err(|e| e.to_string())?;
    let cfg_json = serde_json::to_string(cfg).map_err(|e| e.to_string())?;
    let gpu_json = serde_json::to_string(gpu).map_err(|e| e.to_string())?;
    Ok(format!(
        "cmd={cmd}\nbench={}\nscale={scale:?}\ntrace_deps=per_thread:{},per_block:{},phase_lens:{:?}\nrun={run_json}\nconfig={cfg_json}\ngpu={gpu_json}\n",
        bench.name, deps.per_thread, deps.per_block, deps.phase_lens
    ))
}

/// Cache file name for a key: `<cmd>-<bench>-<fnv16hex>.json`. The
/// human-readable prefix is for debuggability only; collision safety
/// comes from the 64-bit content hash of the full key text.
pub fn cache_name(cmd: &str, bench_name: &str, key: &str) -> String {
    let safe: String = bench_name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    format!(
        "{cmd}-{safe}-{:016x}.json",
        tbpoint_obs::fnv1a64(key.as_bytes())
    )
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The on-disk cache: one sealed JSON file per key under one directory.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    write_lock: Mutex<()>,
}

impl ResultCache {
    /// Open (creating the directory if needed) and sweep stale
    /// `write_atomic` staging files left by a crash. Returns the cache
    /// and the swept paths.
    ///
    /// # Errors
    ///
    /// I/O errors creating or scanning the directory.
    pub fn open(dir: &Path) -> std::io::Result<(Self, Vec<PathBuf>)> {
        std::fs::create_dir_all(dir)?;
        let swept = tbpoint_obs::clean_stale_tmps(dir)?;
        Ok((
            ResultCache {
                dir: dir.to_path_buf(),
                write_lock: Mutex::new(()),
            },
            swept,
        ))
    }

    /// The directory entries live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of an entry by name.
    pub fn entry_path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// Read an entry: verify the integrity trailer, then deserialize.
    /// Damage of any kind quarantines the entry instead of serving it.
    pub fn lookup(&self, name: &str) -> Lookup {
        let path = self.entry_path(name);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Lookup::Miss,
            // Unreadable bytes (permission flip, invalid UTF-8) are
            // damage too: quarantine rather than retry forever.
            Err(_) => return self.quarantine(&path),
        };
        match tbpoint_obs::verify(&text) {
            Ok(body) => match serde_json::from_str::<WorkBody>(body) {
                Ok(b) => Lookup::Hit(b),
                // Checksum fine but shape unknown (schema skew): the
                // entry is useless — heal by recomputing.
                Err(_) => self.quarantine(&path),
            },
            Err(_) => self.quarantine(&path),
        }
    }

    /// Persist a verified entry: sealed, atomically written, rename
    /// made durable by the parent-directory fsync inside
    /// [`tbpoint_obs::write_atomic`].
    ///
    /// # Errors
    ///
    /// I/O errors from the atomic write.
    pub fn store(&self, name: &str, body: &WorkBody) -> std::io::Result<()> {
        // The seal checksum covers newline-terminated bodies (the
        // trailer convention all sealed artifacts share), so terminate
        // before sealing.
        let json = format!("{}\n", serde_json::to_string_pretty(body)?);
        let sealed = tbpoint_obs::seal(&json);
        let _guard = lock(&self.write_lock);
        tbpoint_obs::write_atomic(&self.entry_path(name), sealed.as_bytes())
    }

    /// Rename a damaged entry aside (`<name>.quarantined`) so the next
    /// lookup is a clean miss. Best-effort: if the rename itself fails
    /// the entry is removed instead; either way it is never served.
    fn quarantine(&self, path: &Path) -> Lookup {
        let _guard = lock(&self.write_lock);
        let aside = PathBuf::from(format!("{}.quarantined", path.display()));
        if std::fs::rename(path, &aside).is_err() {
            let _ = std::fs::remove_file(path);
        }
        Lookup::Quarantined
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::SimSummary;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "tbpoint_serve_cache_{tag}_{}_{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn body() -> WorkBody {
        WorkBody::Sim(SimSummary {
            predicted_ipc: 1.25,
            predicted_total_cycles: 4096.0,
            sample_size: 0.3,
            launches_simulated: 2,
            launches_total: 4,
            degraded_launches: 0,
        })
    }

    #[test]
    fn store_then_lookup_round_trips() {
        let dir = scratch("roundtrip");
        let (cache, swept) = ResultCache::open(&dir).expect("open");
        assert!(swept.is_empty());
        assert_eq!(cache.lookup("k.json"), Lookup::Miss);
        cache.store("k.json", &body()).expect("store");
        assert_eq!(cache.lookup("k.json"), Lookup::Hit(body()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_quarantined_not_served() {
        let dir = scratch("quarantine");
        let (cache, _) = ResultCache::open(&dir).expect("open");
        cache.store("k.json", &body()).expect("store");

        // Flip one byte in the sealed entry.
        let path = cache.entry_path("k.json");
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[10] ^= 0x01;
        std::fs::write(&path, &bytes).expect("corrupt");

        assert_eq!(cache.lookup("k.json"), Lookup::Quarantined);
        assert!(!path.exists(), "damaged entry renamed aside");
        assert!(
            PathBuf::from(format!("{}.quarantined", path.display())).exists(),
            "quarantine file kept for forensics"
        );
        // Next lookup is a clean miss; a recompute heals the entry.
        assert_eq!(cache.lookup("k.json"), Lookup::Miss);
        cache.store("k.json", &body()).expect("heal");
        assert_eq!(cache.lookup("k.json"), Lookup::Hit(body()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_stale_staging_files() {
        let dir = scratch("sweep");
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join(".k.json.tmp"), b"torn").expect("plant");
        let (cache, swept) = ResultCache::open(&dir).expect("open");
        assert_eq!(swept.len(), 1);
        assert_eq!(cache.lookup("k.json"), Lookup::Miss, "tmp never parsed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_name_is_stable_and_sanitized() {
        assert_eq!(
            cache_name("eval", "bfs", "key"),
            format!("eval-bfs-{:016x}.json", tbpoint_obs::fnv1a64(b"key"))
        );
        assert!(cache_name("sim", "we/ird name", "k").starts_with("sim-we_ird_name-"));
    }
}

//! Deterministic bounded retry with seeded backoff.
//!
//! The PR 3 fault taxonomy splits failures into *transient* (a worker
//! panic contained by the supervised pool — the unit saw torn ambient
//! state or an injected fault, and an identical re-run can succeed)
//! and *permanent* (every [`TbError`](tbpoint_core::TbError): invalid
//! config, profile mismatch, cycle-budget overrun — re-running cannot
//! change a pure function's answer). The service retries only the
//! transient class.
//!
//! Backoff durations are a pure function of `(seed, request seq,
//! attempt)` through the stateless [`tbpoint_stats`] mixers — no RNG
//! state, no wall clock — so a failing schedule replays exactly.
//! Sleeping affects *when* a retry runs, never *what* it computes: the
//! response bytes stay identical whether the backoff is 1ms or an hour.

/// Retry shape for transient unit failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-attempts after the first try (0 disables retry).
    pub max_retries: u32,
    /// Seed for the backoff jitter stream.
    pub seed: u64,
    /// Upper bound on one backoff sleep, milliseconds. Kept small by
    /// default: the pool has already contained the failure, so backoff
    /// is pacing, not damage control.
    pub max_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            seed: 0x5EED,
            max_backoff_ms: 20,
        }
    }
}

impl RetryPolicy {
    /// Deterministic backoff before re-attempt `attempt` (1-based) of
    /// the request with arrival number `seq`: exponential base doubled
    /// per attempt, jittered by the seeded mixer, capped at
    /// [`RetryPolicy::max_backoff_ms`].
    pub fn backoff_ms(&self, seq: u64, attempt: u32) -> u64 {
        if self.max_backoff_ms == 0 {
            return 0;
        }
        let base = 1u64 << attempt.min(16);
        let jitter = tbpoint_stats::unit_index(&[self.seed, seq, u64::from(attempt)], base);
        (base + jitter).min(self.max_backoff_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let p = RetryPolicy::default();
        for seq in 0..4u64 {
            for attempt in 1..4u32 {
                let a = p.backoff_ms(seq, attempt);
                assert_eq!(a, p.backoff_ms(seq, attempt), "replays exactly");
                assert!(a <= p.max_backoff_ms);
            }
        }
        // Different seeds move the jitter.
        let q = RetryPolicy { seed: 7, ..p };
        assert!((0..32u64).any(|s| p.backoff_ms(s, 1) != q.backoff_ms(s, 1)));
        // Zero cap means no sleeping at all (the test configuration).
        let z = RetryPolicy {
            max_backoff_ms: 0,
            ..p
        };
        assert_eq!(z.backoff_ms(3, 2), 0);
    }
}

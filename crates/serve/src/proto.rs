//! The stdin-JSONL wire protocol: one request per line in, one response
//! per line out.
//!
//! Requests are parsed *leniently* through the vendored [`serde::Value`]
//! tree — every field except `cmd` is optional with a documented
//! default — because callers are external and a missing optional field
//! must not be a hard error. Responses are serialised *strictly*
//! through derived `Serialize` impls: every field is always present, in
//! declaration order, so identical outcomes are byte-identical lines
//! (the property the CI drill compares across worker counts and across
//! a kill-and-restart cycle).
//!
//! A malformed line still gets a structured `error` response carrying
//! its sequence number — the service never drops input silently.

use serde::{Deserialize, Serialize};
use tbpoint_workloads::Scale;

/// What a request asks the service to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Run the TBPoint sampled simulation for one benchmark.
    Simulate,
    /// Sampled simulation plus the full-simulation reference and error.
    Eval,
    /// Report the service counters (admission, retries, cache traffic).
    Status,
    /// Drain the current batch, answer, then exit the request loop.
    Shutdown,
}

impl Command {
    /// Wire name of the command.
    pub fn name(&self) -> &'static str {
        match self {
            Command::Simulate => "simulate",
            Command::Eval => "eval",
            Command::Status => "status",
            Command::Shutdown => "shutdown",
        }
    }
}

/// A deliberately injected failure, for contract tests and the CI
/// drill. Fault-carrying requests bypass the result cache entirely (no
/// read, no write): an injected fault must never pollute durable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Panic on every attempt — retries exhaust and the caller gets a
    /// structured `error` response.
    Panic,
    /// Panic on the first attempt only — the deterministic retry
    /// succeeds and the response is byte-identical to a clean run.
    PanicOnce,
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Arrival sequence number within the service run (assigned by the
    /// service, not the caller; obs events are keyed on it).
    pub seq: u64,
    /// Caller-chosen correlation id, echoed in the response. Defaults
    /// to the decimal sequence number.
    pub id: String,
    /// What to do.
    pub cmd: Command,
    /// Benchmark name (required for `simulate` / `eval`).
    pub bench: String,
    /// Workload scale (`"full"` / `"dev"` / `"tiny"`; default `tiny`).
    pub scale: Scale,
    /// Per-request simulated-cycle deadline, layered onto
    /// `TbpointConfig::cycle_budget`. Deterministic: the same request
    /// overruns at the same simulated cycle on every machine.
    pub cycle_budget: Option<u64>,
    /// Per-request warming budget override.
    pub warming_budget: Option<u32>,
    /// Run the live single-pass sampling mode (`TbpointConfig::mode =
    /// Live`): the profiling stage is skipped and the online detector
    /// samples during the one timing pass. Defaults to `false`
    /// (two-phase). The cache key includes the full config, so live and
    /// two-phase results never collide.
    pub live: bool,
    /// Wall-clock guardrail in milliseconds, checked between retry
    /// rounds only. **Nondeterministic by nature** — contract tests
    /// never set it; see the service docs.
    pub wall_budget_ms: Option<u64>,
    /// Injected failure (tests and drills only).
    pub fault: Option<InjectedFault>,
}

fn str_field(obj: &[(String, serde::Value)], name: &str) -> Result<Option<String>, String> {
    match obj.iter().find(|(k, _)| k == name) {
        None => Ok(None),
        Some((_, serde::Value::Str(s))) => Ok(Some(s.clone())),
        Some((_, v)) => Err(format!("field `{name}`: expected string, got {}", v.kind())),
    }
}

fn bool_field(obj: &[(String, serde::Value)], name: &str) -> Result<Option<bool>, String> {
    match obj.iter().find(|(k, _)| k == name) {
        None | Some((_, serde::Value::Null)) => Ok(None),
        Some((_, serde::Value::Bool(b))) => Ok(Some(*b)),
        Some((_, v)) => Err(format!(
            "field `{name}`: expected boolean, got {}",
            v.kind()
        )),
    }
}

fn u64_field(obj: &[(String, serde::Value)], name: &str) -> Result<Option<u64>, String> {
    match obj.iter().find(|(k, _)| k == name) {
        None | Some((_, serde::Value::Null)) => Ok(None),
        Some((_, serde::Value::U64(n))) => Ok(Some(*n)),
        Some((_, v)) => Err(format!(
            "field `{name}`: expected non-negative integer, got {}",
            v.kind()
        )),
    }
}

fn parse_scale(s: &str) -> Result<Scale, String> {
    match s {
        "full" => Ok(Scale::Full),
        "dev" => Ok(Scale::Dev),
        "tiny" => Ok(Scale::Tiny),
        other => Err(format!("unknown scale `{other}` (full|dev|tiny)")),
    }
}

/// Parse one request line. `seq` is the service-assigned arrival
/// number.
///
/// # Errors
///
/// A human-readable message naming the first offending field; the
/// service turns it into a structured `error` response.
pub fn parse_request(line: &str, seq: u64) -> Result<Request, String> {
    let value: serde::Value =
        serde_json::from_str(line).map_err(|e| format!("malformed request JSON: {e}"))?;
    let obj = value
        .as_obj()
        .ok_or_else(|| format!("request must be a JSON object, got {}", value.kind()))?;

    let cmd = match str_field(obj, "cmd")? {
        Some(s) => match s.as_str() {
            "simulate" => Command::Simulate,
            "eval" => Command::Eval,
            "status" => Command::Status,
            "shutdown" => Command::Shutdown,
            other => return Err(format!("unknown cmd `{other}`")),
        },
        None => return Err("missing field `cmd`".to_string()),
    };
    let bench = str_field(obj, "bench")?.unwrap_or_default();
    if matches!(cmd, Command::Simulate | Command::Eval) && bench.is_empty() {
        return Err(format!("cmd `{}` requires field `bench`", cmd.name()));
    }
    let scale = match str_field(obj, "scale")? {
        Some(s) => parse_scale(&s)?,
        None => Scale::Tiny,
    };
    let fault = match str_field(obj, "fault")?.as_deref() {
        None => None,
        Some("panic") => Some(InjectedFault::Panic),
        Some("panic-once") => Some(InjectedFault::PanicOnce),
        Some(other) => return Err(format!("unknown fault `{other}` (panic|panic-once)")),
    };
    let warming_budget = match u64_field(obj, "warming_budget")? {
        Some(n) => {
            Some(u32::try_from(n).map_err(|_| "field `warming_budget`: exceeds u32".to_string())?)
        }
        None => None,
    };
    Ok(Request {
        seq,
        id: str_field(obj, "id")?.unwrap_or_else(|| seq.to_string()),
        cmd,
        bench,
        scale,
        cycle_budget: u64_field(obj, "cycle_budget")?,
        warming_budget,
        live: bool_field(obj, "live")?.unwrap_or(false),
        wall_budget_ms: u64_field(obj, "wall_budget_ms")?,
        fault,
    })
}

/// Compact result of one sampled simulation (the `simulate` payload and
/// the TBPoint half of the `eval` payload).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimSummary {
    /// Predicted overall IPC.
    pub predicted_ipc: f64,
    /// Predicted total cycles.
    pub predicted_total_cycles: f64,
    /// Simulated / total warp instructions.
    pub sample_size: f64,
    /// Launches actually simulated.
    pub launches_simulated: u64,
    /// Total launches in the run.
    pub launches_total: u64,
    /// Launches that fell back to detailed simulation.
    pub degraded_launches: u64,
}

impl SimSummary {
    /// Summarise a pipeline result.
    pub fn of(r: &tbpoint_core::TbpointResult) -> Self {
        SimSummary {
            predicted_ipc: r.predicted_ipc,
            predicted_total_cycles: r.predicted_total_cycles,
            sample_size: r.sample_size(),
            launches_simulated: r.num_simulated_launches as u64,
            launches_total: r.num_launches as u64,
            degraded_launches: r.degraded_launches as u64,
        }
    }
}

/// The `eval` payload: the sampled run against its full-simulation
/// reference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalSummary {
    /// The sampled (TBPoint) half.
    pub tbpoint: SimSummary,
    /// Full-simulation overall IPC (the reference).
    pub full_ipc: f64,
    /// Absolute sampling error vs the reference, percent.
    pub error_pct: f64,
}

/// The cacheable result of one work request — what the
/// content-addressed cache persists and what a hit deserializes back
/// into.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkBody {
    /// A `simulate` result.
    Sim(SimSummary),
    /// An `eval` result.
    Eval(EvalSummary),
}

/// Snapshot of the service counters (the `status` payload). Reported
/// values reflect the end of the batch the `status` request arrived in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StatusReport {
    /// Requests that passed admission control.
    pub admitted: u64,
    /// Requests load-shed at admission (bounded queue full).
    pub rejected: u64,
    /// Transient-failure re-attempts scheduled by the retry policy.
    pub retried: u64,
    /// Requests that overran their cycle budget.
    pub deadline_exceeded: u64,
    /// Work requests answered from the result cache.
    pub cache_hits: u64,
    /// Cache entries quarantined after failing checksum re-verification.
    pub cache_quarantined: u64,
    /// Fresh results persisted to the cache.
    pub cache_stores: u64,
    /// Work requests that completed with a result.
    pub completed_ok: u64,
    /// Work requests that ended in a structured error.
    pub failed: u64,
    /// Result-cache entries on disk at the end of the batch the
    /// `status` request arrived in (0 when caching is disabled).
    pub cache_entries: u64,
    /// Total size in bytes of those entries.
    pub cache_bytes: u64,
}

/// One response line. Every field is always serialised (empty string /
/// `null` when inapplicable) so identical outcomes are byte-identical.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Echo of the request id (the decimal seq for malformed lines).
    pub id: String,
    /// Arrival sequence number.
    pub seq: u64,
    /// `"ok"`, `"error"`, `"rejected"` or `"deadline-exceeded"`.
    pub status: String,
    /// Echo of the command (`""` for malformed lines).
    pub cmd: String,
    /// Echo of the benchmark (`""` when inapplicable).
    pub bench: String,
    /// Error message (`""` on success).
    pub error: String,
    /// `simulate` result, when the request was one.
    pub simulate: Option<SimSummary>,
    /// `eval` result, when the request was one.
    pub eval: Option<EvalSummary>,
    /// `status` counters, when the request was one.
    pub service: Option<StatusReport>,
}

impl Response {
    /// Skeleton with the given identity and empty payloads.
    pub fn empty(id: String, seq: u64, status: &str, cmd: &str, bench: &str) -> Self {
        Response {
            id,
            seq,
            status: status.to_string(),
            cmd: cmd.to_string(),
            bench: bench.to_string(),
            error: String::new(),
            simulate: None,
            eval: None,
            service: None,
        }
    }

    /// Serialise as one JSONL line (no trailing newline). Derived
    /// serialization of this plain struct cannot fail; if it ever did,
    /// the wire stays alive with a minimal structured error line.
    pub fn to_line(&self) -> String {
        match serde_json::to_string(self) {
            Ok(s) => s,
            Err(e) => format!(
                "{{\"id\":{:?},\"seq\":{},\"status\":\"error\",\"error\":\"serialize: {e}\"}}",
                self.id, self.seq
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_request() {
        let r = parse_request(
            r#"{"id":"a1","cmd":"eval","bench":"bfs","scale":"dev","cycle_budget":5000,"fault":"panic-once"}"#,
            3,
        )
        .expect("parse");
        assert_eq!(r.id, "a1");
        assert_eq!(r.seq, 3);
        assert_eq!(r.cmd, Command::Eval);
        assert_eq!(r.bench, "bfs");
        assert_eq!(r.scale, Scale::Dev);
        assert_eq!(r.cycle_budget, Some(5000));
        assert_eq!(r.fault, Some(InjectedFault::PanicOnce));
    }

    #[test]
    fn defaults_fill_optional_fields() {
        let r = parse_request(r#"{"cmd":"simulate","bench":"bfs"}"#, 9).expect("parse");
        assert_eq!(r.id, "9", "id defaults to the seq");
        assert_eq!(r.scale, Scale::Tiny);
        assert_eq!(r.cycle_budget, None);
        assert_eq!(r.fault, None);
    }

    #[test]
    fn rejects_bad_shapes_with_field_names() {
        assert!(parse_request("not json", 0)
            .expect_err("err")
            .contains("malformed"));
        assert!(parse_request("[1,2]", 0)
            .expect_err("err")
            .contains("object"));
        assert!(parse_request("{}", 0).expect_err("err").contains("`cmd`"));
        assert!(parse_request(r#"{"cmd":"dance"}"#, 0)
            .expect_err("err")
            .contains("unknown cmd"));
        assert!(parse_request(r#"{"cmd":"simulate"}"#, 0)
            .expect_err("err")
            .contains("`bench`"));
        assert!(
            parse_request(r#"{"cmd":"simulate","bench":"bfs","scale":"huge"}"#, 0)
                .expect_err("err")
                .contains("unknown scale")
        );
        assert!(
            parse_request(r#"{"cmd":"simulate","bench":"bfs","fault":"hang"}"#, 0)
                .expect_err("err")
                .contains("unknown fault")
        );
        assert!(
            parse_request(r#"{"cmd":"simulate","bench":"bfs","cycle_budget":-4}"#, 0)
                .expect_err("err")
                .contains("cycle_budget")
        );
    }

    #[test]
    fn status_and_shutdown_need_no_bench() {
        assert_eq!(
            parse_request(r#"{"cmd":"status"}"#, 0).expect("parse").cmd,
            Command::Status
        );
        assert_eq!(
            parse_request(r#"{"cmd":"shutdown"}"#, 1)
                .expect("parse")
                .cmd,
            Command::Shutdown
        );
    }

    #[test]
    fn responses_serialize_deterministically() {
        let a = Response::empty("7".into(), 7, "ok", "status", "");
        let b = Response::empty("7".into(), 7, "ok", "status", "");
        assert_eq!(a.to_line(), b.to_line());
        let back: Response = serde_json::from_str(&a.to_line()).expect("round trip");
        assert_eq!(back, a);
    }
}

// Tests assert by panicking and compare exact floats on purpose.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

//! # tbpoint-baselines
//!
//! The two comparison points of the paper's evaluation (Section V-A):
//!
//! * **Random sampling** — run the full timing simulation, slice it into
//!   one-million-instruction sampling units, keep a random 10% of the
//!   units and predict the overall IPC from them alone.
//! * **Ideal-SimPoint** — run the full timing simulation collecting a BBV
//!   per sampling unit, cluster the BBVs with k-means + BIC (the SimPoint
//!   recipe), simulate only each cluster's representative unit and weight
//!   its IPC by the cluster's size (Eq. 1).
//!
//! A third approach, **systematic sampling** (periodic units), appears in
//! the paper's Related Work as the alternative to profiling-based
//! sampling; [`systematic`] implements it so the comparison can be run.
//!
//! Both are "ideal" in the sense that they *require the full timing
//! simulation they are supposed to avoid* — on a GPU, which instructions
//! each warp executes inside a unit depends on warp scheduling, so BBVs
//! per unit cannot be collected by functional profiling. That is the
//! paper's core argument for TBPoint; the baselines here exist to
//! reproduce Figs. 9-11's comparisons, with their sample sizes and errors
//! computed from the recorded units.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ideal_simpoint;
pub mod random;
pub mod systematic;

pub use ideal_simpoint::{ideal_simpoint, IdealSimpointConfig};
pub use random::{random_sampling, RandomConfig};
pub use systematic::{systematic_sampling, SystematicConfig};

use serde::{Deserialize, Serialize};
use tbpoint_ir::KernelRun;
use tbpoint_sim::{simulate_run, GpuConfig, NullSampling, UnitRecord, UnitsConfig};

/// Common result shape for both baselines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineResult {
    /// Predicted overall IPC.
    pub predicted_ipc: f64,
    /// Fraction of warp instructions inside selected units.
    pub sample_size: f64,
    /// Sampling units available.
    pub num_units: usize,
    /// Sampling units selected for "simulation".
    pub num_selected: usize,
}

impl BaselineResult {
    /// Absolute sampling error in percent against a reference IPC.
    pub fn error_vs(&self, full_ipc: f64) -> f64 {
        tbpoint_stats::abs_pct_error(self.predicted_ipc, full_ipc)
    }
}

/// Run the full timing simulation of `run` and collect its sampling
/// units (concatenated across launches, in execution order).
///
/// `collect_bbv` is needed by Ideal-SimPoint only. Returns the units and
/// the full-simulation overall IPC (the error reference).
pub fn collect_units(
    run: &KernelRun,
    gpu: &GpuConfig,
    unit_warp_insts: u64,
    collect_bbv: bool,
) -> (Vec<UnitRecord>, f64) {
    let result = simulate_run(
        run,
        gpu,
        &mut NullSampling,
        Some(UnitsConfig {
            unit_warp_insts,
            collect_bbv,
        }),
    );
    let ipc = result.overall_ipc();
    let units = result.launches.into_iter().flat_map(|l| l.units).collect();
    (units, ipc)
}

/// Predicted overall IPC from a subset of units: total selected
/// instructions over total selected cycles — the cycle-weighted analogue
/// of Eq. 1's weighted-CPI sum.
pub(crate) fn subset_ipc(units: &[UnitRecord], selected: &[usize]) -> f64 {
    let insts: u64 = selected.iter().map(|&i| units[i].warp_insts).sum();
    let cycles: u64 = selected.iter().map(|&i| units[i].cycles).sum();
    if cycles == 0 {
        0.0
    } else {
        insts as f64 / cycles as f64
    }
}

/// Fraction of all instructions contained in the selected units.
pub(crate) fn subset_fraction(units: &[UnitRecord], selected: &[usize]) -> f64 {
    let total: u64 = units.iter().map(|u| u.warp_insts).sum();
    if total == 0 {
        return 0.0;
    }
    let sel: u64 = selected.iter().map(|&i| units[i].warp_insts).sum();
    sel as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn fake_units(ipcs: &[f64]) -> Vec<UnitRecord> {
        ipcs.iter()
            .map(|&ipc| UnitRecord {
                start_cycle: 0,
                cycles: (1000.0 / ipc) as u64,
                warp_insts: 1000,
                bbv: vec![],
            })
            .collect()
    }

    #[test]
    fn subset_ipc_is_cycle_weighted() {
        let units = fake_units(&[1.0, 0.5]);
        // All units: 2000 insts / (1000 + 2000) cycles = 0.667.
        let ipc = subset_ipc(&units, &[0, 1]);
        assert!((ipc - 2.0 / 3.0).abs() < 1e-9);
        assert!((subset_ipc(&units, &[0]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn subset_fraction_counts_insts() {
        let units = fake_units(&[1.0, 1.0, 1.0, 1.0]);
        assert!((subset_fraction(&units, &[0]) - 0.25).abs() < 1e-12);
        assert_eq!(subset_fraction(&[], &[]), 0.0);
    }
}

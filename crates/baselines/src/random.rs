//! The Random baseline: "collect IPC for every sampling unit with one
//! million instructions and randomly select 10% sampling units"
//! (Section V-A).

use crate::{subset_fraction, subset_ipc, BaselineResult};
use serde::{Deserialize, Serialize};
use tbpoint_sim::UnitRecord;
use tbpoint_stats::SplitMix64;

/// Random-sampling parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomConfig {
    /// Fraction of units to select (paper: 0.10).
    pub fraction: f64,
    /// RNG seed for the selection.
    pub seed: u64,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            fraction: 0.10,
            seed: 0xACE,
        }
    }
}

/// Select `fraction` of the units uniformly at random (at least one) and
/// predict the overall IPC from the selection.
pub fn random_sampling(units: &[UnitRecord], cfg: &RandomConfig) -> BaselineResult {
    if units.is_empty() {
        return BaselineResult {
            predicted_ipc: 0.0,
            sample_size: 0.0,
            num_units: 0,
            num_selected: 0,
        };
    }
    let n = units.len();
    // fraction is in [0, 1], so the saturating cast stays within [0, n]
    // before the clamp.
    #[allow(clippy::cast_possible_truncation)]
    let k = ((n as f64 * cfg.fraction).round() as usize).clamp(1, n);
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = SplitMix64::new(cfg.seed);
    rng.shuffle(&mut idx);
    let selected = &idx[..k];
    BaselineResult {
        predicted_ipc: subset_ipc(units, selected),
        sample_size: subset_fraction(units, selected),
        num_units: n,
        num_selected: k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbpoint_sim::UnitRecord;

    fn fake_units(ipcs: &[f64]) -> Vec<UnitRecord> {
        ipcs.iter()
            .map(|&ipc| UnitRecord {
                start_cycle: 0,
                cycles: (1000.0 / ipc) as u64,
                warp_insts: 1000,
                bbv: vec![],
            })
            .collect()
    }

    #[test]
    fn selects_ten_percent() {
        let units = fake_units(&[1.0; 100]);
        let r = random_sampling(&units, &RandomConfig::default());
        assert_eq!(r.num_selected, 10);
        assert!((r.sample_size - 0.10).abs() < 1e-12);
        assert!((r.predicted_ipc - 1.0).abs() < 1e-9);
    }

    #[test]
    fn always_selects_at_least_one() {
        let units = fake_units(&[2.0, 2.0, 2.0]);
        let r = random_sampling(
            &units,
            &RandomConfig {
                fraction: 0.01,
                seed: 1,
            },
        );
        assert_eq!(r.num_selected, 1);
    }

    #[test]
    fn homogeneous_units_give_exact_prediction() {
        let units = fake_units(&[0.5; 40]);
        let r = random_sampling(&units, &RandomConfig::default());
        assert!((r.predicted_ipc - 0.5).abs() < 1e-9);
    }

    #[test]
    fn heterogeneous_units_can_mispredict() {
        // A rare slow phase: random sampling frequently misses it, which
        // is exactly the paper's complaint about random sampling on
        // irregular kernels. Check that *some* seed mispredicts.
        let mut ipcs = vec![1.0; 95];
        ipcs.extend(vec![0.05; 5]);
        let units = fake_units(&ipcs);
        let full: f64 = {
            let insts: u64 = units.iter().map(|u| u.warp_insts).sum();
            let cycles: u64 = units.iter().map(|u| u.cycles).sum();
            insts as f64 / cycles as f64
        };
        let mut worst = 0.0f64;
        for seed in 0..20 {
            let r = random_sampling(
                &units,
                &RandomConfig {
                    fraction: 0.10,
                    seed,
                },
            );
            worst = worst.max(r.error_vs(full));
        }
        assert!(
            worst > 10.0,
            "worst random error {worst:.1}% suspiciously low"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let units = fake_units(&[1.0, 0.4, 0.9, 0.2, 0.7, 1.0, 0.4, 0.9, 0.2, 0.7]);
        let a = random_sampling(
            &units,
            &RandomConfig {
                fraction: 0.3,
                seed: 7,
            },
        );
        let b = random_sampling(
            &units,
            &RandomConfig {
                fraction: 0.3,
                seed: 7,
            },
        );
        assert_eq!(a, b);
    }

    #[test]
    fn empty_units_is_graceful() {
        let r = random_sampling(&[], &RandomConfig::default());
        assert_eq!(r.num_units, 0);
        assert_eq!(r.predicted_ipc, 0.0);
    }
}

//! The Ideal-SimPoint baseline (Section V-A).
//!
//! SimPoint's recipe, applied to per-unit BBVs harvested from a *full*
//! timing simulation: normalise each unit's BBV by its instruction count
//! (Eq. 1), cluster with k-means + BIC, keep the unit closest to each
//! cluster centroid as the simulation point, and predict the overall IPC
//! as the cluster-weighted combination of the representatives' IPCs.
//!
//! "Ideal" because no real GPU workflow could collect these BBVs without
//! the very simulation being avoided — warp scheduling decides which
//! instructions land in which unit.

use crate::{subset_fraction, BaselineResult};
use serde::{Deserialize, Serialize};
use tbpoint_cluster::{kmeans_best_bic, Point};
use tbpoint_sim::UnitRecord;

/// Ideal-SimPoint parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IdealSimpointConfig {
    /// Largest cluster count k-means may choose (SimPoint default ~30).
    pub max_k: usize,
    /// BIC quality fraction for the smallest-acceptable-k rule (0.9).
    pub bic_quality: f64,
    /// Clustering seed.
    pub seed: u64,
}

impl Default for IdealSimpointConfig {
    fn default() -> Self {
        IdealSimpointConfig {
            max_k: 30,
            bic_quality: 0.9,
            seed: 0x51A9,
        }
    }
}

/// Run Ideal-SimPoint over the recorded units.
///
/// # Panics
/// Panics if any unit lacks a BBV (collect with `collect_bbv: true`).
pub fn ideal_simpoint(units: &[UnitRecord], cfg: &IdealSimpointConfig) -> BaselineResult {
    if units.is_empty() {
        return BaselineResult {
            predicted_ipc: 0.0,
            sample_size: 0.0,
            num_units: 0,
            num_selected: 0,
        };
    }
    // Eq. 1: BBV entries normalised by the unit's instruction count.
    let points: Vec<Point> = units
        .iter()
        .map(|u| {
            assert!(
                !u.bbv.is_empty(),
                "Ideal-SimPoint needs per-unit BBVs (collect_bbv: true)"
            );
            let total = u.warp_insts.max(1) as f64;
            u.bbv.iter().map(|&c| c as f64 / total).collect()
        })
        .collect();

    let km = kmeans_best_bic(
        &points,
        cfg.max_k.min(points.len()),
        cfg.seed,
        cfg.bic_quality,
    );
    let reps = km.clustering.representatives(&points);

    // Predicted total cycles: each unit contributes its instructions at
    // its cluster representative's IPC (the cycle-domain form of Eq. 1's
    // weighted CPI).
    let mut predicted_cycles = 0.0;
    let mut total_insts = 0u64;
    for (i, u) in units.iter().enumerate() {
        let rep = reps[km.clustering.assignments[i]];
        let rep_ipc = units[rep].ipc();
        total_insts += u.warp_insts;
        if rep_ipc > 0.0 {
            predicted_cycles += u.warp_insts as f64 / rep_ipc;
        }
    }
    let predicted_ipc = if predicted_cycles > 0.0 {
        total_insts as f64 / predicted_cycles
    } else {
        0.0
    };

    BaselineResult {
        predicted_ipc,
        sample_size: subset_fraction(units, &reps),
        num_units: units.len(),
        num_selected: reps.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Units with a BBV signature and an IPC. Signature `s` selects the
    /// hot basic block.
    fn unit(sig: usize, ipc: f64) -> UnitRecord {
        let mut bbv = vec![0u64; 3];
        bbv[sig] = 900;
        bbv[(sig + 1) % 3] = 100;
        UnitRecord {
            start_cycle: 0,
            cycles: (1000.0 / ipc) as u64,
            warp_insts: 1000,
            bbv,
        }
    }

    #[test]
    fn two_phase_program_needs_two_points() {
        let mut units = vec![];
        for _ in 0..20 {
            units.push(unit(0, 1.0));
        }
        for _ in 0..20 {
            units.push(unit(1, 0.25));
        }
        let r = ideal_simpoint(&units, &IdealSimpointConfig::default());
        assert_eq!(r.num_selected, 2, "two BBV phases -> two simulation points");
        // Exact prediction: each phase is internally homogeneous.
        let full_cycles: u64 = units.iter().map(|u| u.cycles).sum();
        let full_ipc = 40_000.0 / full_cycles as f64;
        assert!(
            r.error_vs(full_ipc) < 1.0,
            "error {:.3}%",
            r.error_vs(full_ipc)
        );
        assert!((r.sample_size - 2.0 / 40.0).abs() < 1e-9);
    }

    #[test]
    fn bbv_blind_to_ipc_differences_within_same_code() {
        // The mst failure mode (Fig. 9): identical BBVs but different
        // IPCs (TLP changes from outlier TBs). Ideal-SimPoint merges the
        // units and mispredicts.
        let mut units = vec![];
        for _ in 0..30 {
            units.push(unit(0, 1.0));
        }
        for _ in 0..10 {
            units.push(unit(0, 0.2)); // same code signature, 5x slower
        }
        let r = ideal_simpoint(&units, &IdealSimpointConfig::default());
        assert_eq!(r.num_selected, 1, "identical BBVs collapse to one cluster");
        let full_cycles: u64 = units.iter().map(|u| u.cycles).sum();
        let full_ipc = 40_000.0 / full_cycles as f64;
        assert!(
            r.error_vs(full_ipc) > 5.0,
            "BBV blindness should cause visible error, got {:.3}%",
            r.error_vs(full_ipc)
        );
    }

    #[test]
    fn homogeneous_units_one_point_exact() {
        let units: Vec<UnitRecord> = (0..25).map(|_| unit(2, 0.6)).collect();
        let r = ideal_simpoint(&units, &IdealSimpointConfig::default());
        assert_eq!(r.num_selected, 1);
        assert!((r.predicted_ipc - 0.6).abs() < 0.01);
    }

    #[test]
    fn empty_units_is_graceful() {
        let r = ideal_simpoint(&[], &IdealSimpointConfig::default());
        assert_eq!(r.num_units, 0);
    }

    #[test]
    #[should_panic(expected = "needs per-unit BBVs")]
    fn missing_bbv_rejected() {
        let u = UnitRecord {
            start_cycle: 0,
            cycles: 100,
            warp_insts: 100,
            bbv: vec![],
        };
        ideal_simpoint(&[u], &IdealSimpointConfig::default());
    }
}

//! Systematic sampling — the third approach the paper discusses
//! (Section VI, Related Work): "systematic sampling selects a random
//! starting point and takes samples periodically; for example, 0.1
//! million instructions are simulated for every 10 million instructions."
//!
//! The paper argues it is orthogonal-but-inferior for GPGPU kernels:
//! the simulated instruction count is proportional to the total (no
//! benefit from regularity), and it offers no insight into *why* a
//! sample is representative. Implemented here so the claim can be
//! measured rather than asserted — `tbpoint ablate`/EXPERIMENTS.md
//! include it in the comparison.

use crate::{subset_fraction, subset_ipc, BaselineResult};
use serde::{Deserialize, Serialize};
use tbpoint_sim::UnitRecord;
use tbpoint_stats::SplitMix64;

/// Systematic-sampling parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystematicConfig {
    /// Period: one unit is kept out of every `period` units.
    pub period: usize,
    /// Seed for the random starting offset.
    pub seed: u64,
}

impl Default for SystematicConfig {
    fn default() -> Self {
        // The paper's example ratio (0.1M simulated per 10M) is 1:100;
        // its Random baseline uses 10%. We default to the same 10%
        // budget (period 10) so the two are directly comparable.
        SystematicConfig {
            period: 10,
            seed: 0x5A5,
        }
    }
}

/// Keep every `period`-th unit starting from a random offset and predict
/// the overall IPC from the kept units.
pub fn systematic_sampling(units: &[UnitRecord], cfg: &SystematicConfig) -> BaselineResult {
    if units.is_empty() {
        return BaselineResult {
            predicted_ipc: 0.0,
            sample_size: 0.0,
            num_units: 0,
            num_selected: 0,
        };
    }
    let period = cfg.period.max(1);
    // offset < period: usize, so the u64 round-trip is exact.
    #[allow(clippy::cast_possible_truncation)]
    let offset = SplitMix64::new(cfg.seed).next_index(period as u64) as usize;
    let selected: Vec<usize> = (offset..units.len()).step_by(period).collect();
    // Degenerate short streams: keep at least the offset unit.
    let selected = if selected.is_empty() {
        vec![units.len() - 1]
    } else {
        selected
    };
    BaselineResult {
        predicted_ipc: subset_ipc(units, &selected),
        sample_size: subset_fraction(units, &selected),
        num_units: units.len(),
        num_selected: selected.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_units(ipcs: &[f64]) -> Vec<UnitRecord> {
        ipcs.iter()
            .map(|&ipc| UnitRecord {
                start_cycle: 0,
                cycles: (1000.0 / ipc) as u64,
                warp_insts: 1000,
                bbv: vec![],
            })
            .collect()
    }

    #[test]
    fn keeps_one_in_period() {
        let units = fake_units(&[1.0; 100]);
        let r = systematic_sampling(&units, &SystematicConfig::default());
        assert_eq!(r.num_selected, 10);
        assert!((r.sample_size - 0.10).abs() < 1e-12);
        assert!((r.predicted_ipc - 1.0).abs() < 1e-9);
    }

    #[test]
    fn offset_is_random_but_bounded() {
        let units = fake_units(&[1.0; 40]);
        for seed in 0..20 {
            let r = systematic_sampling(&units, &SystematicConfig { period: 10, seed });
            assert!(r.num_selected == 4, "seed {seed}: {}", r.num_selected);
        }
    }

    #[test]
    fn periodic_workload_aliases_with_matching_period() {
        // Alternating fast/slow units with period equal to the sampling
        // period: systematic sampling sees only one phase — the aliasing
        // failure mode the paper's regular kernels expose.
        let mut ipcs = vec![];
        for i in 0..100 {
            ipcs.push(if i % 2 == 0 { 1.0 } else { 0.25 });
        }
        let units = fake_units(&ipcs);
        let full = {
            let insts: u64 = units.iter().map(|u| u.warp_insts).sum();
            let cycles: u64 = units.iter().map(|u| u.cycles).sum();
            insts as f64 / cycles as f64
        };
        let r = systematic_sampling(&units, &SystematicConfig { period: 2, seed: 3 });
        assert!(
            r.error_vs(full) > 30.0,
            "aliasing should mispredict badly, got {:.2}%",
            r.error_vs(full)
        );
    }

    #[test]
    fn short_streams_keep_at_least_one_unit() {
        let units = fake_units(&[0.5, 0.5]);
        let r = systematic_sampling(
            &units,
            &SystematicConfig {
                period: 10,
                seed: 0,
            },
        );
        assert!(r.num_selected >= 1);
        assert!(r.predicted_ipc > 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let units = fake_units(&[1.0, 0.5, 0.7, 0.9, 0.2, 1.0, 0.5, 0.7, 0.9, 0.2]);
        let a = systematic_sampling(
            &units,
            &SystematicConfig {
                period: 3,
                seed: 11,
            },
        );
        let b = systematic_sampling(
            &units,
            &SystematicConfig {
                period: 3,
                seed: 11,
            },
        );
        assert_eq!(a, b);
    }

    #[test]
    fn empty_units_is_graceful() {
        let r = systematic_sampling(&[], &SystematicConfig::default());
        assert_eq!(r.num_units, 0);
    }
}

//! Exact stationary-distribution solver and transient analysis.
//!
//! Power iteration (in [`crate::markov`]) matches the paper's
//! `V_s = lim V_i T^n` formulation; this module adds:
//!
//! * a **direct solver**: the stationary distribution as the solution of
//!   `pi (T - I) = 0, sum(pi) = 1` via Gaussian elimination — an
//!   independent check on the iterative result, and immune to slow
//!   mixing when `M` is large;
//! * **transient analysis**: the distribution after exactly `n` steps
//!   from the all-runnable start, giving the model's view of how long a
//!   "warming period" needs to be before IPC measurements reflect the
//!   steady state — the quantity the paper's warming heuristic
//!   approximates empirically.

use crate::markov::WarpChain;

/// Stationary distribution by direct linear solve (Gaussian elimination
/// with partial pivoting on the transposed balance equations).
pub fn stationary_direct(chain: &WarpChain) -> Vec<f64> {
    let n = chain.num_states();
    // Build A = T^t - I with the last balance equation replaced by the
    // normalisation sum(pi) = 1.
    let mut a = vec![vec![0.0f64; n + 1]; n];
    #[allow(clippy::needless_range_loop)] // (i, j) index the matrix directly
    for i in 0..n {
        for j in 0..n {
            a[j][i] = chain.transition(i, j); // transpose
        }
    }
    for (i, row) in a.iter_mut().enumerate() {
        row[i] -= 1.0;
    }
    for x in a[n - 1].iter_mut().take(n) {
        *x = 1.0;
    }
    a[n - 1][n] = 1.0;

    // Gaussian elimination with partial pivoting.
    for col in 0..n {
        let pivot = (col..n)
            .max_by(|&r1, &r2| a[r1][col].abs().total_cmp(&a[r2][col].abs()))
            .unwrap_or(col);
        a.swap(col, pivot);
        let p = a[col][col];
        assert!(p.abs() > 1e-14, "singular transition system");
        for r in 0..n {
            if r != col {
                let f = a[r][col] / p;
                if f != 0.0 {
                    let (pivot_row, target_row) = if r < col {
                        let (lo, hi) = a.split_at_mut(col);
                        (&hi[0], &mut lo[r])
                    } else {
                        let (lo, hi) = a.split_at_mut(r);
                        (&lo[col], &mut hi[0])
                    };
                    for (t, &pv) in target_row[col..=n].iter_mut().zip(&pivot_row[col..=n]) {
                        *t -= f * pv;
                    }
                }
            }
        }
    }
    (0..n).map(|i| (a[i][n] / a[i][i]).max(0.0)).collect()
}

/// Distribution after exactly `steps` transitions from the all-runnable
/// initial state `V_i = <0, ..., 0, 1>`.
pub fn distribution_after(chain: &WarpChain, steps: u32) -> Vec<f64> {
    let n = chain.num_states();
    let t = chain.transition_matrix();
    let mut v = vec![0.0; n];
    v[n - 1] = 1.0;
    let mut next = vec![0.0; n];
    for _ in 0..steps {
        next.iter_mut().for_each(|x| *x = 0.0);
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            for (j, nj) in next.iter_mut().enumerate() {
                *nj += vi * t[i][j];
            }
        }
        std::mem::swap(&mut v, &mut next);
    }
    v
}

/// Expected IPC after exactly `steps` cycles from a cold (all-runnable)
/// start: `1 - P(all stalled at that step)`.
pub fn ipc_after(chain: &WarpChain, steps: u32) -> f64 {
    1.0 - distribution_after(chain, steps)[0]
}

/// Smallest number of steps after which the instantaneous IPC is within
/// `tol` (relative) of the stationary IPC — the model's warm-up length.
/// Returns `None` if not reached within `max_steps`.
pub fn warmup_steps(chain: &WarpChain, tol: f64, max_steps: u32) -> Option<u32> {
    let target = chain.ipc_fast();
    if target == 0.0 {
        return Some(0);
    }
    // Coarse-to-fine scan: march in jumps of max(1, max/256), then back
    // off a jump and finish stepwise. Transient IPC decays monotonically
    // toward the target from the all-runnable start.
    let mut step = 0u32;
    let jump = (max_steps / 256).max(1);
    let within = |s: u32| ((ipc_after(chain, s) - target) / target).abs() <= tol;
    while step <= max_steps {
        if within(step) {
            // Refine backwards to the first in-tolerance step.
            let lo = step.saturating_sub(jump);
            for s in lo..=step {
                if within(s) {
                    return Some(s);
                }
            }
            return Some(step);
        }
        step = step.saturating_add(jump);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_matches_power_iteration() {
        for &(n, p, m) in &[(2u32, 0.1, 50.0), (4, 0.2, 100.0), (6, 0.05, 200.0)] {
            let chain = WarpChain::uniform(n, p, m);
            let direct = stationary_direct(&chain);
            let iterative = chain.steady_state(1e-13);
            for (d, i) in direct.iter().zip(&iterative) {
                assert!((d - i).abs() < 1e-6, "N={n}: {d} vs {i}");
            }
            assert!((direct.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn direct_matches_closed_form_ipc() {
        let chain = WarpChain::with_ms(0.15, vec![60.0, 120.0, 240.0]);
        let pi = stationary_direct(&chain);
        assert!((1.0 - pi[0] - chain.ipc_fast()).abs() < 1e-9);
    }

    #[test]
    fn transient_starts_at_one_and_decays_to_steady() {
        let chain = WarpChain::uniform(4, 0.1, 100.0);
        assert_eq!(ipc_after(&chain, 0), 1.0);
        let early = ipc_after(&chain, 5);
        let late = ipc_after(&chain, 5_000);
        let steady = chain.ipc_fast();
        assert!(early > late, "IPC must decay from the cold start");
        assert!((late - steady).abs() / steady < 1e-3);
    }

    #[test]
    fn warmup_scales_with_stall_length() {
        // Longer stalls mean slower mixing: the warm-up grows with M.
        let short = warmup_steps(&WarpChain::uniform(4, 0.1, 50.0), 0.05, 100_000).unwrap();
        let long = warmup_steps(&WarpChain::uniform(4, 0.1, 400.0), 0.05, 100_000).unwrap();
        assert!(
            long > short,
            "M=400 warm-up ({long}) should exceed M=50 warm-up ({short})"
        );
    }

    #[test]
    fn warmup_zero_when_no_stalls() {
        let chain = WarpChain::uniform(4, 0.0, 100.0);
        assert_eq!(warmup_steps(&chain, 0.05, 1000), Some(0));
    }
}

// Tests assert by panicking and compare exact floats on purpose.
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::float_cmp,
        clippy::cast_possible_truncation
    )
)]

//! # tbpoint-model
//!
//! The mathematical backbone of intra-launch sampling (Section IV-A of the
//! paper): a Markov-chain model of N concurrently scheduled warps, each
//! either *runnable* or *stalled*, plus the Monte-Carlo study that shows a
//! homogeneous interval's IPC barely moves under random warp interleaving.
//!
//! Per the paper's Definition 4.0 / Figure 4:
//!
//! * a runnable warp stalls with probability `p` each cycle (`p` =
//!   stall probability, approximated at profile time by
//!   `mem_insts / total_insts`);
//! * a stalled warp wakes with probability `1 / M_x` each cycle, where
//!   `M_x` is that warp's mean stall duration, drawn once per experiment
//!   from `N(mu, sigma^2)` with `sigma = 0.1 * mu / 1.96` (so 95% of draws
//!   land within ±10% of `mu`);
//! * the SM issues one instruction per cycle whenever at least one warp is
//!   runnable, so `IPC = 1 - R_0` with `R_0` the steady-state probability
//!   of the all-stalled state (Eq. 3).
//!
//! Lemma 4.1 — reproduced by [`monte_carlo::ipc_variation`] — states that
//! more than 95% of Monte-Carlo samples fall within 10% of the mean IPC.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod markov;
pub mod monte_carlo;
pub mod simulate;
pub mod solve;

pub use markov::{closed_form_ipc, steady_state_ipc, WarpChain};
pub use monte_carlo::{ipc_variation, IpcVariationConfig, IpcVariationResult};
pub use simulate::simulate_chain_ipc;
pub use solve::{distribution_after, ipc_after, stationary_direct, warmup_steps};

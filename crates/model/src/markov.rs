//! The 2^N-state Markov chain of Eq. 3.
//!
//! State encoding follows the paper: bit `x` of the state index is warp
//! `x`'s status, `1` = runnable, `0` = stalled. State `0` is "every warp
//! stalled" (the SM issues nothing); state `2^N - 1` is "every warp
//! runnable" (the initial state `V_i = <0, 0, ..., 1>`).

/// Maximum number of warps the dense chain supports. `2^12 x 2^12` f64
/// entries = 128 MiB of transition matrix — beyond that the dense approach
/// stops being sensible, and the paper never exceeds N = 8 (Fig. 5).
pub const MAX_WARPS: u32 = 12;

/// A homogeneous interval's warp population: `n` i.i.d. warps with stall
/// probability `p` and per-warp mean stall durations `ms[x]` (cycles).
#[derive(Debug, Clone, PartialEq)]
pub struct WarpChain {
    /// Number of concurrent warps N (1..=[`MAX_WARPS`]).
    pub n_warps: u32,
    /// Per-cycle stall probability of a runnable warp.
    pub p: f64,
    /// Mean stall duration of each warp; `ms.len() == n_warps as usize`.
    pub ms: Vec<f64>,
}

impl WarpChain {
    /// Uniform-M convenience constructor.
    ///
    /// # Panics
    /// Panics on invalid parameters (see [`WarpChain::validate`]).
    pub fn uniform(n_warps: u32, p: f64, m: f64) -> Self {
        let c = Self {
            n_warps,
            p,
            ms: vec![m; n_warps as usize],
        };
        c.validate();
        c
    }

    /// Per-warp-M constructor (the Monte-Carlo path).
    ///
    /// # Panics
    /// Panics on invalid parameters (see [`WarpChain::validate`]).
    pub fn with_ms(p: f64, ms: Vec<f64>) -> Self {
        // validate() rejects more than 64 warps, so the cast is exact.
        #[allow(clippy::cast_possible_truncation)]
        let c = Self {
            n_warps: ms.len() as u32,
            p,
            ms,
        };
        c.validate();
        c
    }

    /// Parameter sanity: `1 <= N <= MAX_WARPS`, `0 <= p <= 1`, every
    /// `M >= 1` (a stall shorter than one cycle is not a stall).
    pub fn validate(&self) {
        assert!(
            (1..=MAX_WARPS).contains(&self.n_warps),
            "n_warps {} outside 1..={MAX_WARPS}",
            self.n_warps
        );
        assert!((0.0..=1.0).contains(&self.p), "p {} outside [0,1]", self.p);
        assert_eq!(self.ms.len(), self.n_warps as usize, "ms length != n_warps");
        assert!(
            self.ms.iter().all(|&m| m >= 1.0),
            "every M must be >= 1 cycle"
        );
    }

    /// Number of chain states, `2^N`.
    pub fn num_states(&self) -> usize {
        1usize << self.n_warps
    }

    /// Transition probability `S[i][j]` per Eq. 3: the product over warps
    /// of the per-warp move/stay probability.
    pub fn transition(&self, i: usize, j: usize) -> f64 {
        let mut prob = 1.0;
        for x in 0..self.n_warps as usize {
            let ai = (i >> x) & 1; // 1 = runnable
            let aj = (j >> x) & 1;
            let wake = 1.0 / self.ms[x];
            let f = if ai != aj {
                // Warp x flips state.
                if ai == 1 {
                    self.p // runnable -> stalled
                } else {
                    wake // stalled -> runnable
                }
            } else if ai == 1 {
                1.0 - self.p // stays runnable
            } else {
                1.0 - wake // stays stalled
            };
            prob *= f;
        }
        prob
    }

    /// Dense row-stochastic transition matrix (row `i` -> column `j`).
    pub fn transition_matrix(&self) -> Vec<Vec<f64>> {
        let s = self.num_states();
        (0..s)
            .map(|i| (0..s).map(|j| self.transition(i, j)).collect())
            .collect()
    }

    /// Steady-state distribution by power iteration from the paper's
    /// initial vector (all warps runnable), to tolerance `tol` in L1.
    pub fn steady_state(&self, tol: f64) -> Vec<f64> {
        let s = self.num_states();
        let t = self.transition_matrix();
        let mut v = vec![0.0; s];
        v[s - 1] = 1.0; // V_i = <0,...,0,1>
        let mut next = vec![0.0; s];
        for _ in 0..200_000 {
            next.iter_mut().for_each(|x| *x = 0.0);
            for (i, &vi) in v.iter().enumerate() {
                if vi == 0.0 {
                    continue;
                }
                for (j, nj) in next.iter_mut().enumerate() {
                    *nj += vi * t[i][j];
                }
            }
            let delta: f64 = v.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
            std::mem::swap(&mut v, &mut next);
            if delta < tol {
                break;
            }
        }
        v
    }

    /// Predicted IPC: `1 - R_0` (the SM issues unless all warps stalled).
    pub fn ipc(&self) -> f64 {
        let v = self.steady_state(1e-12);
        1.0 - v[0]
    }

    /// Closed-form IPC via the product structure of the chain.
    ///
    /// Eq. 3's transition matrix factorises over warps (each warp is an
    /// independent two-state chain), so the steady-state probability of the
    /// all-stalled state is the product of per-warp stall probabilities
    /// `p / (p + 1/M_x)`. Identical to [`WarpChain::ipc`] (a unit test
    /// checks this) but O(N) instead of O(4^N · iterations) — the
    /// Monte-Carlo driver runs this 10,000 times per configuration.
    pub fn ipc_fast(&self) -> f64 {
        if self.p == 0.0 {
            return 1.0;
        }
        let r0: f64 = self
            .ms
            .iter()
            .map(|&m| self.p / (self.p + 1.0 / m))
            .product();
        1.0 - r0
    }
}

/// One-call helper: steady-state IPC of `n` warps with uniform `p`, `m`.
pub fn steady_state_ipc(n_warps: u32, p: f64, m: f64) -> f64 {
    WarpChain::uniform(n_warps, p, m).ipc()
}

/// Closed-form IPC for any warp count (the product structure needs no
/// dense matrix, so `n` is not limited to [`MAX_WARPS`]): the SM issues
/// unless all `n` i.i.d. warps are stalled.
pub fn closed_form_ipc(n_warps: u32, p: f64, m: f64) -> f64 {
    assert!(n_warps >= 1, "need at least one warp");
    assert!((0.0..=1.0).contains(&p));
    assert!(m >= 1.0);
    if p == 0.0 {
        return 1.0;
    }
    let pi_stall = p / (p + 1.0 / m);
    1.0 - pi_stall.powi(n_warps as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_stochastic() {
        let c = WarpChain::uniform(4, 0.1, 100.0);
        let t = c.transition_matrix();
        for row in &t {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "row sum {s}");
        }
    }

    #[test]
    fn single_warp_closed_form() {
        // For N=1 the chain is a two-state birth-death process:
        // pi_runnable = (1/M) / (p + 1/M)  =>  IPC = pi_runnable.
        let (p, m) = (0.1, 50.0);
        let expect = (1.0 / m) / (p + 1.0 / m);
        let got = steady_state_ipc(1, p, m);
        assert!((got - expect).abs() < 1e-9, "got {got}, expect {expect}");
    }

    #[test]
    fn independent_warps_product_form() {
        // Warps are i.i.d. two-state chains, so the steady-state
        // probability that *all* are stalled is (p/(p+1/M))^N and
        // IPC = 1 - that.
        for &n in &[2u32, 4, 6] {
            let (p, m) = (0.2, 40.0);
            let pi_stall: f64 = p / (p + 1.0 / m);
            let expect = 1.0 - pi_stall.powi(n as i32);
            let got = steady_state_ipc(n, p, m);
            assert!(
                (got - expect).abs() < 1e-9,
                "N={n}: got {got}, expect {expect}"
            );
        }
    }

    #[test]
    fn closed_form_matches_chain_and_extends_beyond_cap() {
        for &(n, p, m) in &[(2u32, 0.1, 100.0), (8, 0.2, 50.0)] {
            assert!((closed_form_ipc(n, p, m) - steady_state_ipc(n, p, m)).abs() < 1e-9);
        }
        // Beyond the dense-chain cap it still behaves sanely.
        let ipc48 = closed_form_ipc(48, 0.2, 200.0);
        assert!(ipc48 > closed_form_ipc(12, 0.2, 200.0));
        assert!(ipc48 <= 1.0);
    }

    #[test]
    fn fast_path_matches_dense_chain() {
        for &(n, p, m) in &[(2u32, 0.05, 100.0), (4, 0.1, 400.0), (6, 0.3, 50.0)] {
            let c = WarpChain::uniform(n, p, m);
            assert!(
                (c.ipc() - c.ipc_fast()).abs() < 1e-8,
                "N={n} p={p} M={m}: dense {} vs fast {}",
                c.ipc(),
                c.ipc_fast()
            );
        }
        let het = WarpChain::with_ms(0.15, vec![80.0, 120.0, 350.0]);
        assert!((het.ipc() - het.ipc_fast()).abs() < 1e-8);
    }

    #[test]
    fn zero_stall_probability_gives_full_ipc() {
        assert!((steady_state_ipc(4, 0.0, 100.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_warps_hide_more_latency() {
        let ipc: Vec<f64> = (1..=8).map(|n| steady_state_ipc(n, 0.1, 200.0)).collect();
        for w in ipc.windows(2) {
            assert!(w[1] > w[0], "IPC must increase with warp count: {ipc:?}");
        }
    }

    #[test]
    fn longer_stalls_hurt_ipc() {
        let a = steady_state_ipc(4, 0.1, 100.0);
        let b = steady_state_ipc(4, 0.1, 400.0);
        assert!(b < a);
    }

    #[test]
    fn heterogeneous_ms_are_supported() {
        let c = WarpChain::with_ms(0.1, vec![100.0, 200.0, 300.0, 400.0]);
        let ipc = c.ipc();
        // Product form with heterogeneous Ms.
        let expect = 1.0
            - [100.0f64, 200.0, 300.0, 400.0]
                .iter()
                .map(|&m| 0.1 / (0.1 + 1.0 / m))
                .product::<f64>();
        assert!((ipc - expect).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "outside 1..=")]
    fn rejects_too_many_warps() {
        WarpChain::uniform(13, 0.1, 100.0);
    }

    #[test]
    #[should_panic(expected = "M must be >= 1")]
    fn rejects_sub_cycle_stalls() {
        WarpChain::uniform(2, 0.1, 0.5);
    }

    #[test]
    fn transition_example_from_paper() {
        // The paper's example: S_{6,2} is warp 2 (second-most-significant
        // of 4 bits) going runnable->stalled while others hold.
        // 6 = 0110, 2 = 0010. With the paper's MSB-first reading, our
        // LSB-first encoding gives the same product because the chain is
        // symmetric under bit relabeling when Ms are uniform.
        let c = WarpChain::uniform(4, 0.1, 100.0);
        let s62 = c.transition(6, 2);
        // 0110 -> 0010: one runnable warp stalls (p), one runnable warp
        // stays (1-p), two stalled warps stay (1 - 1/M)^2.
        let expect = 0.1 * 0.9 * (1.0 - 0.01) * (1.0 - 0.01);
        assert!((s62 - expect).abs() < 1e-12);
    }
}

//! Direct stochastic simulation of the warp state machine.
//!
//! An independent check on the Markov algebra: instead of solving for the
//! steady state, run the per-warp coin-flip process of Fig. 4 cycle by
//! cycle and measure the fraction of cycles in which at least one warp is
//! runnable. Used by tests and by the model-validation example to show
//! simulation and analysis agree.

use tbpoint_stats::SplitMix64;

/// Simulate `n_warps` warps for `cycles` cycles and return the measured
/// IPC (fraction of cycles with >= 1 runnable warp).
///
/// Geometric stall durations with mean `m` are realised by waking each
/// stalled warp with probability `1/m` per cycle — exactly the chain's
/// dynamics, so for long runs this converges to
/// [`crate::markov::WarpChain::ipc`].
pub fn simulate_chain_ipc(n_warps: u32, p: f64, m: f64, cycles: u64, seed: u64) -> f64 {
    assert!((1..=64).contains(&n_warps), "n_warps out of range");
    assert!((0.0..=1.0).contains(&p));
    assert!(m >= 1.0);
    let mut rng = SplitMix64::new(seed);
    let wake = 1.0 / m;
    // Bit x of `state` = warp x runnable; n_warps <= 64 keeps the mask in
    // the low 64 bits of the u128 intermediate.
    #[allow(clippy::cast_possible_truncation)]
    let mut state: u64 = (1u128 << n_warps).wrapping_sub(1) as u64;
    let mut issued = 0u64;
    for _ in 0..cycles {
        if state != 0 {
            issued += 1;
        }
        let mut next = 0u64;
        for x in 0..n_warps {
            let runnable = state & (1 << x) != 0;
            let stays_runnable = if runnable {
                rng.next_f64() >= p
            } else {
                rng.next_f64() < wake
            };
            if stays_runnable {
                next |= 1 << x;
            }
        }
        state = next;
    }
    issued as f64 / cycles as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markov::steady_state_ipc;

    #[test]
    fn simulation_agrees_with_markov_analysis() {
        for &(n, p, m) in &[(4u32, 0.1, 100.0), (8, 0.05, 200.0), (2, 0.3, 50.0)] {
            let analytic = steady_state_ipc(n, p, m);
            let simulated = simulate_chain_ipc(n, p, m, 2_000_000, 42);
            let rel = (analytic - simulated).abs() / analytic;
            assert!(
                rel < 0.02,
                "N={n} p={p} M={m}: analytic {analytic:.4} vs simulated {simulated:.4}"
            );
        }
    }

    #[test]
    fn no_stalls_means_ipc_one() {
        assert_eq!(simulate_chain_ipc(4, 0.0, 100.0, 10_000, 1), 1.0);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = simulate_chain_ipc(4, 0.1, 100.0, 10_000, 7);
        let b = simulate_chain_ipc(4, 0.1, 100.0, 10_000, 7);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_zero_warps() {
        simulate_chain_ipc(0, 0.1, 100.0, 100, 1);
    }
}

//! # tbpoint — facade crate
//!
//! Re-exports the whole TBPoint workspace behind one dependency, so examples
//! and downstream users can write `use tbpoint::...` without tracking the
//! individual sub-crates.
//!
//! TBPoint (Huang, Nai, Kim, Lee — IPDPS 2014) reduces cycle-level GPGPU
//! simulation time by sampling at two levels:
//!
//! * **inter-launch**: cluster kernel launches by a 4-feature vector and
//!   simulate one representative per cluster ([`core::inter`]);
//! * **intra-launch**: identify *homogeneous regions* of thread blocks from
//!   a hardware-independent profile and fast-forward through them once the
//!   measured IPC stabilises ([`core::intra`], [`core::sampling`]).
//!
//! The workspace also contains everything the paper's evaluation needs:
//! a SIMT functional profiler ([`emu`]), a cycle-level GPU timing simulator
//! ([`sim`]), clustering algorithms ([`cluster`]), the Markov-chain warp
//! interleaving model ([`model`]), the Table-VI benchmark roster
//! ([`workloads`]), the Random / Ideal-SimPoint baselines ([`baselines`]),
//! an observability layer of recorders, counters and cycle-stamped
//! events ([`obs`]), and a deterministic cross-launch job pool with the
//! unified [`ExecPlan`](pool::ExecPlan) parallelism API ([`pool`]).
//!
//! Pipeline entry points return [`TbError`] instead of panicking; grab
//! the usual suspects from [`prelude`]:
//!
//! ```no_run
//! use tbpoint::prelude::*;
//! # fn demo(run: &tbpoint::ir::KernelRun) -> Result<(), TbError> {
//! let profile = profile_run(run, 1);
//! let gpu = GpuConfig::fermi();
//! let result = run_tbpoint(run, &profile, &TbpointConfig::default(), &gpu)?;
//! println!("predicted IPC {:.3}", result.predicted_ipc);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use tbpoint_baselines as baselines;
pub use tbpoint_cluster as cluster;
pub use tbpoint_core as core;
pub use tbpoint_emu as emu;
pub use tbpoint_ir as ir;
pub use tbpoint_model as model;
pub use tbpoint_obs as obs;
pub use tbpoint_pool as pool;
pub use tbpoint_sim as sim;
pub use tbpoint_stats as stats;
pub use tbpoint_workloads as workloads;

pub use tbpoint_core::TbError;

/// The names most library users need, in one import.
pub mod prelude {
    pub use crate::core::{
        run_tbpoint, run_tbpoint_plan, run_tbpoint_traced, run_tbpoint_traced_plan, IntraOutcome,
        LaunchTrace, RegionSampler, RegionSamplerBuilder, TbError, TbpointConfig, TbpointResult,
    };
    pub use crate::emu::{profile_launch, profile_run};
    pub use crate::obs::{
        CollectingRecorder, Event, EventKind, JsonlRecorder, NullRecorder, Recorder, TraceBundle,
    };
    pub use crate::pool::{ExecPlan, SweepUnit};
    pub use crate::sim::{simulate_launch, simulate_run, GpuConfig};
}

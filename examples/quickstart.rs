//! Quickstart: define a kernel, profile it once, then simulate it with
//! and without TBPoint sampling and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tbpoint::ir::{AddrPattern, KernelBuilder, KernelRun, LaunchId, LaunchSpec, Op, TripCount};
use tbpoint::prelude::*;
use tbpoint::sim::NullSampling;

fn main() -> Result<(), TbError> {
    // 1. Describe a kernel with the builder: a simple streaming kernel,
    //    30 loop iterations of ALU work plus one coalesced load.
    let mut b = KernelBuilder::new("quickstart", 42, 128);
    let body = b.block(&[
        Op::IAlu,
        Op::FAlu,
        Op::LdGlobal(AddrPattern::Coalesced {
            region: 0,
            stride: 4,
        }),
    ]);
    let program = b.loop_(TripCount::Const(30), body);
    let kernel = b.finish(program);
    kernel.validate().expect("kernel is well-formed");

    // 2. Give it eight identical launches of 2,000 thread blocks — the
    //    pattern of an iterative solver.
    let run = KernelRun {
        kernel,
        launches: (0..8)
            .map(|i| LaunchSpec {
                launch_id: LaunchId(i),
                num_blocks: 2000,
                work_scale: 1.0,
            })
            .collect(),
    };

    let gpu = GpuConfig::fermi(); // the paper's Table V machine

    // 3. One-time, hardware-independent profiling (the GPUOcelot step).
    let profile = profile_run(&run, 4);
    println!(
        "profiled {} launches, {} thread blocks, {} warp instructions",
        profile.launches.len(),
        run.total_blocks(),
        profile.total_warp_insts()
    );

    // 4. Reference: the full cycle-level simulation.
    let t0 = std::time::Instant::now();
    let full = simulate_run(&run, &gpu, &mut NullSampling, None);
    let t_full = t0.elapsed();
    println!(
        "full simulation: IPC {:.3} over {} cycles  ({:?})",
        full.overall_ipc(),
        full.total_cycles(),
        t_full
    );

    // 5. TBPoint: inter-launch + intra-launch sampling with the paper's
    //    thresholds (sigma_inter = 0.1, sigma_intra = 0.2, VF = 0.3).
    let t1 = std::time::Instant::now();
    let tbp = run_tbpoint(&run, &profile, &TbpointConfig::default(), &gpu)?;
    let t_tbp = t1.elapsed();
    println!(
        "TBPoint:         IPC {:.3} predicted  ({:?})",
        tbp.predicted_ipc, t_tbp
    );
    println!(
        "sampling error {:.2}%  |  sample size {:.1}%  |  simulated {}/{} launches",
        tbp.error_vs(full.overall_ipc()),
        tbp.sample_size() * 100.0,
        tbp.num_simulated_launches,
        tbp.num_launches
    );
    println!(
        "savings: {} warp insts skipped by inter-launch, {} by intra-launch sampling",
        tbp.breakdown.inter_skipped_warp_insts, tbp.breakdown.intra_skipped_warp_insts
    );
    Ok(())
}

//! Bring your own workload: describe a kernel with [`SyntheticSpec`]
//! knobs instead of hand-building a program tree, then watch the
//! intra-launch sampler work through it event by event via a
//! [`CollectingRecorder`].
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use tbpoint::core::intra::{build_epochs, identify_regions, IntraConfig};
use tbpoint::prelude::*;
use tbpoint::sim::NullSampling;
use tbpoint::workloads::{PhaseSpec, SyntheticSpec};

fn main() -> Result<(), TbError> {
    // A memory-divergent, phase-structured workload: three grid phases
    // with up to 3x work, half the loads as random gathers, mild branch
    // divergence.
    let spec = SyntheticSpec {
        name: "custom".into(),
        seed: 2024,
        threads_per_block: 128,
        launches: 1,
        blocks_per_launch: 2048,
        iterations: 12,
        alu_per_iter: 2,
        loads_per_iter: 2,
        gather_fraction: 0.5,
        divergence_spread: 6,
        phases: PhaseSpec::Phased {
            phase_len: 672,
            max_mult: 3,
        },
        branch_prob: 0.2,
    };
    let run = spec.build();
    let gpu = GpuConfig::fermi();
    let launch = &run.launches[0];

    // Characterise it.
    let profile = profile_launch(&run.kernel, launch, 4);
    let div = tbpoint::emu::DivergenceReport::from_profile(&profile);
    println!(
        "workload: {} TBs, {} warp insts, SIMD efficiency {:.1}%, {:.1} requests/mem inst",
        launch.num_blocks,
        profile.warp_insts(),
        div.simd_efficiency * 100.0,
        div.requests_per_mem_inst
    );

    // Identify homogeneous regions.
    let occupancy = gpu.system_occupancy(&run.kernel);
    let epochs = build_epochs(&profile, occupancy);
    let table = identify_regions(&epochs, &IntraConfig::default());
    println!(
        "epochs of {occupancy} TBs: {} total, {} regions identified",
        epochs.len(),
        table.regions.len()
    );

    // Reference run.
    let full = simulate_launch(&run.kernel, launch, &gpu, &mut NullSampling, None);

    // Sampled run with a recorder attached through the builder.
    let rec = CollectingRecorder::new();
    let mut sampler = RegionSampler::builder(&table, &profile)
        .recorder(&rec)
        .build()?;
    let sampled = simulate_launch(&run.kernel, launch, &gpu, &mut sampler, None);
    let out = sampler.outcome();

    println!("\nsampler event log (condensed):");
    let mut skipped_in_row = 0u32;
    for ev in rec.events() {
        match ev.kind {
            EventKind::BlockSkipped { .. } => skipped_in_row += 1,
            other => {
                if skipped_in_row > 0 {
                    println!("  ... {skipped_in_row} blocks skipped");
                    skipped_in_row = 0;
                }
                let cycle = ev.cycle;
                match other {
                    EventKind::RegionEntered { region } => {
                        println!("  cycle {cycle:>9}: entered region {region}")
                    }
                    EventKind::RegionExited => {
                        println!("  cycle {cycle:>9}: exited region")
                    }
                    EventKind::UnitClosed { ipc } => {
                        println!("  cycle {cycle:>9}: sampling unit closed, IPC {ipc:.3}")
                    }
                    EventKind::FastForwardStarted { region, ipc } => {
                        println!("  cycle {cycle:>9}: FAST-FORWARD region {region} at IPC {ipc:.3}")
                    }
                    _ => {}
                }
            }
        }
    }
    if skipped_in_row > 0 {
        println!("  ... {skipped_in_row} blocks skipped");
    }

    let predicted_cycles = sampled.cycles as f64 + out.predicted_skipped_cycles;
    let total = (sampled.issued_warp_insts + out.skipped_warp_insts) as f64;
    let predicted_ipc = total / predicted_cycles;
    println!(
        "\nfull IPC {:.4} | predicted {:.4} | error {:.2}% | sample size {:.1}%",
        full.ipc(),
        predicted_ipc,
        ((predicted_ipc - full.ipc()) / full.ipc()).abs() * 100.0,
        sampled.issued_warp_insts as f64 / total * 100.0
    );
    Ok(())
}

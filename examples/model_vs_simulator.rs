//! Closing the loop: measure the Markov model's inputs (p, M, N) from an
//! actual cycle-level simulation and compare the model's predicted IPC
//! against the simulator's measured per-SM IPC.
//!
//! The paper uses the model (Section IV-A) to argue that homogeneous
//! intervals have stable IPC; here we check the model is quantitatively
//! reasonable on the simulator it is meant to describe: a uniform
//! memory-intensive kernel where every warp has the same per-instruction
//! stall probability.
//!
//! ```text
//! cargo run --release --example model_vs_simulator
//! ```

use tbpoint::ir::{AddrPattern, KernelBuilder, LaunchId, LaunchSpec, Op, TripCount};
use tbpoint::model::closed_form_ipc;
use tbpoint::sim::{simulate_launch, GpuConfig, NullSampling};

fn main() {
    println!(
        "{:>10} {:>8} {:>8} {:>4} {:>12} {:>12} {:>8}",
        "mem insts", "p(meas)", "M(meas)", "N", "model IPC", "sim IPC/SM", "diff"
    );
    // Sweep memory intensity: 1 load per k ALU ops.
    for alu_per_load in [1u32, 3, 7, 15] {
        let mut b = KernelBuilder::new("uniform", 99, 128);
        let mut ops = vec![Op::LdGlobal(AddrPattern::Coalesced {
            region: 0,
            stride: 4,
        })];
        for _ in 0..alu_per_load {
            ops.push(Op::IAlu);
        }
        let body = b.block(&ops);
        let program = b.loop_(TripCount::Const(40), body);
        let kernel = b.finish(program);

        let gpu = GpuConfig::fermi();
        let spec = LaunchSpec {
            launch_id: LaunchId(0),
            num_blocks: gpu.system_occupancy(&kernel) * 20,
            work_scale: 1.0,
        };
        let r = simulate_launch(&kernel, &spec, &gpu, &mut NullSampling, None);

        // Empirical model inputs, averaged over SMs.
        let n_sms = r.sm_stats.len() as f64;
        let p: f64 = r
            .sm_stats
            .iter()
            .map(|s| s.stall_probability())
            .sum::<f64>()
            / n_sms;
        let m: f64 = r
            .sm_stats
            .iter()
            .map(|s| s.mean_load_latency())
            .sum::<f64>()
            / n_sms;
        let n_warps = gpu.sm_occupancy(&kernel) * kernel.warps_per_block();

        // The model says: an SM issues unless all N warps are stalled.
        let model_ipc = closed_form_ipc(n_warps, p, m.max(1.0));
        let sim_ipc: f64 = r.sm_stats.iter().map(|s| s.ipc()).sum::<f64>() / n_sms;

        println!(
            "{:>10} {:>8.3} {:>8.0} {:>4} {:>12.3} {:>12.3} {:>7.1}%",
            format!("1/{}", alu_per_load + 1),
            p,
            m,
            n_warps,
            model_ipc,
            sim_ipc,
            (model_ipc - sim_ipc).abs() / sim_ipc * 100.0
        );
    }
    println!();
    println!("With p and M *measured* from the simulation, the chain's closed form");
    println!("tracks the per-SM issue rate within ~25% across a 16x memory-intensity");
    println!("sweep — first-order agreement (the chain ignores short ALU stalls and");
    println!("MSHR limits). That is the role the paper gives the model: justifying");
    println!("the *stability* of homogeneous-interval IPC (Lemma 4.1), not serving");
    println!("as a performance predictor itself.");
}

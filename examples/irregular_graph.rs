//! Inside intra-launch sampling on an irregular graph workload.
//!
//! Uses the roster's bfs benchmark (13 frontier-shaped launches,
//! power-law degrees, phase-structured density) and walks through what
//! TBPoint actually computes: inter-launch clusters, epochs, the
//! homogeneous region table, and the fast-forward accounting of one
//! sampled launch.
//!
//! ```text
//! cargo run --release --example irregular_graph   # ~1 minute: simulates a
//!                                                 # full-scale bfs launch twice
//! ```

use tbpoint::core::inter::{inter_launch_sample, InterConfig};
use tbpoint::core::intra::{build_epochs, identify_regions, IntraConfig};
use tbpoint::core::sampling::RegionSampler;
use tbpoint::emu::profile_run;
use tbpoint::sim::{simulate_launch, GpuConfig, NullSampling};
use tbpoint::workloads::{benchmark_by_name, Scale};

fn main() {
    // Full scale: launches are big enough for fast-forwarding to engage
    // (at Scale::Dev the grids shrink below the warming cost and the
    // sampler correctly refuses to skip anything).
    let bench = benchmark_by_name("bfs", Scale::Full).expect("bfs is in the roster");
    let gpu = GpuConfig::fermi();

    // One-time profile.
    let profile = profile_run(&bench.run, 4);

    // Inter-launch sampling: which launches are homogeneous?
    let inter = inter_launch_sample(&profile, &InterConfig::default());
    println!(
        "bfs: {} launches -> {} clusters (simulate one per cluster)",
        bench.run.num_launches(),
        inter.num_simulated()
    );
    for (i, f) in inter.features.iter().enumerate() {
        println!(
            "  launch {i:>2}: size {:>7.3}  cfd {:>7.3}  memdiv {:>7.3}  tbvar {:>7.3}  -> cluster {}{}",
            f[0],
            f[1],
            f[2],
            f[3],
            inter.clustering.assignments[i],
            if inter.is_representative(i) { "  [simulation point]" } else { "" }
        );
    }

    // Intra-launch sampling on the biggest representative.
    let rep = *inter
        .representatives
        .iter()
        .max_by_key(|&&r| profile.launches[r].tbs.len())
        .unwrap();
    let launch_profile = &profile.launches[rep];
    let occupancy = gpu.system_occupancy(&bench.run.kernel);
    let epochs = build_epochs(launch_profile, occupancy);
    let table = identify_regions(&epochs, &IntraConfig::default());
    println!();
    println!(
        "launch {rep}: {} thread blocks, epoch size = system occupancy = {occupancy}, {} epochs",
        launch_profile.tbs.len(),
        epochs.len()
    );
    println!("homogeneous region table (Table III):");
    for r in &table.regions {
        println!(
            "  region {:>2}: TB {:>5} .. {:>5}  ({} thread blocks)",
            r.region_id,
            r.start_tb,
            r.end_tb - 1,
            r.end_tb - r.start_tb
        );
    }

    // Simulate the launch with homogeneous-region sampling.
    let spec = &bench.run.launches[rep];
    let full = simulate_launch(&bench.run.kernel, spec, &gpu, &mut NullSampling, None);
    let mut sampler = RegionSampler::new(&table, launch_profile);
    let sampled = simulate_launch(&bench.run.kernel, spec, &gpu, &mut sampler, None);
    let out = sampler.outcome();

    let predicted_cycles = sampled.cycles as f64 + out.predicted_skipped_cycles;
    let total_insts = (sampled.issued_warp_insts + out.skipped_warp_insts) as f64;
    let predicted_ipc = total_insts / predicted_cycles;
    println!();
    println!("sampling one launch:");
    println!(
        "  full:     IPC {:.4}  ({} warp insts simulated)",
        full.ipc(),
        full.issued_warp_insts
    );
    println!(
        "  sampled:  IPC {predicted_ipc:.4}  ({} simulated + {} skipped, {} TBs fast-forwarded)",
        sampled.issued_warp_insts, out.skipped_warp_insts, out.skipped_tbs
    );
    println!(
        "  error {:.2}%  |  launch sample size {:.1}%  |  {} sampling units, {} region entries",
        ((predicted_ipc - full.ipc()) / full.ipc()).abs() * 100.0,
        sampled.issued_warp_insts as f64 / total_insts * 100.0,
        out.units_observed,
        out.regions_entered
    );
}

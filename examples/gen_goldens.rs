//! Regenerate the launch-simulation golden file used by
//! `tests/golden_sim.rs`.
//!
//! ```text
//! cargo run --release --example gen_goldens
//! ```
//!
//! For every Table-VI workload at Tiny scale this simulates every launch
//! with the default (full-detail) dispatch hook and serialises the
//! complete [`tbpoint_sim::RunSimResult`] to
//! `tests/goldens/launch_sim_tiny.json`. The golden test compares the
//! simulator's current output byte-for-byte against the committed file,
//! so any change that perturbs a single cycle count, issue total or hit
//! rate — however small — fails loudly.
//!
//! Only regenerate (and commit the diff) when a simulator change is
//! *supposed* to alter results; performance work must leave this file
//! untouched. See EXPERIMENTS.md ("Bit-identity goldens").

use tbpoint_sim::{simulate_run, GpuConfig, NullSampling};
use tbpoint_workloads::{all_benchmarks, Scale};

fn main() {
    let cfg = GpuConfig::fermi();
    let mut out = String::from("{\n");
    let benches = all_benchmarks(Scale::Tiny);
    for (i, bench) in benches.iter().enumerate() {
        let r = simulate_run(&bench.run, &cfg, &mut NullSampling, None);
        let line = serde_json::to_string(&r).expect("RunSimResult serialises");
        out.push_str(&format!("\"{}\": {line}", bench.name));
        out.push_str(if i + 1 < benches.len() { ",\n" } else { "\n" });
        eprintln!(
            "{:8} {:3} launches, {:>12} cycles total",
            bench.name,
            r.launches.len(),
            r.total_cycles()
        );
    }
    out.push_str("}\n");
    let path = std::path::Path::new("tests/goldens/launch_sim_tiny.json");
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create goldens dir");
    }
    std::fs::write(path, &out).expect("write golden file");
    println!("wrote {} ({} bytes)", path.display(), out.len());
}

//! The mathematical model behind intra-launch sampling (Section IV-A):
//! build the 2^N-state Markov chain of Fig. 4, compare its steady-state
//! IPC against a direct stochastic simulation, then run the Fig. 5
//! Monte-Carlo experiment demonstrating Lemma 4.1.
//!
//! ```text
//! cargo run --release --example markov_model
//! ```

use tbpoint::model::{ipc_variation, simulate_chain_ipc, IpcVariationConfig, WarpChain};

fn main() {
    println!("== Markov chain vs direct simulation ==");
    println!(
        "{:>4} {:>6} {:>6}  {:>10} {:>10} {:>8}",
        "N", "p", "M", "analytic", "simulated", "diff"
    );
    for &(n, p, m) in &[
        (2u32, 0.1, 100.0),
        (4, 0.1, 200.0),
        (8, 0.05, 400.0),
        (8, 0.3, 50.0),
    ] {
        let chain = WarpChain::uniform(n, p, m);
        let analytic = chain.ipc();
        let fast = chain.ipc_fast();
        assert!(
            (analytic - fast).abs() < 1e-8,
            "closed form must match the dense chain"
        );
        let simulated = simulate_chain_ipc(n, p, m, 1_000_000, 7);
        println!(
            "{n:>4} {p:>6.2} {m:>6.0}  {analytic:>10.4} {simulated:>10.4} {:>7.2}%",
            (analytic - simulated).abs() / analytic * 100.0
        );
    }

    println!();
    println!("== Fig. 5: IPC variation under random stall durations ==");
    println!("(M_x ~ N(mu, (0.1 mu / 1.96)^2) per warp, 10,000 samples each)");
    println!(
        "{:>16} {:>9} {:>9} {:>9} {:>12}",
        "config", "mean IPC", "p2.5", "p97.5", "within ±10%"
    );
    for cfg in [
        IpcVariationConfig::paper(0.05, 100.0, 4),
        IpcVariationConfig::paper(0.1, 200.0, 4),
        IpcVariationConfig::paper(0.1, 400.0, 8),
        IpcVariationConfig::paper(0.2, 100.0, 8),
    ] {
        let r = ipc_variation(&cfg, 4);
        println!(
            "{:>16} {:>9.4} {:>9.4} {:>9.4} {:>11.1}%",
            cfg.label(),
            r.mean_ipc,
            r.p2_5,
            r.p97_5,
            r.fraction_within_band * 100.0
        );
        assert!(r.fraction_within_band > 0.95, "Lemma 4.1 must hold");
    }
    println!();
    println!("Lemma 4.1 holds: a homogeneous interval's IPC is stable under");
    println!("warp-interleaving randomness, so sampling one interval per region is sound.");
}

//! One-time profiling in action (Section V-C / Figs. 12-13): profile a
//! kernel once, then retarget TBPoint at hardware configurations with
//! different system occupancies — only the cheap clustering and the
//! sampled simulation rerun.
//!
//! ```text
//! cargo run --release --example hw_sensitivity
//! ```

use tbpoint::prelude::*;
use tbpoint::sim::NullSampling;
use tbpoint::workloads::{benchmark_by_name, Scale};

fn main() -> Result<(), TbError> {
    let bench = benchmark_by_name("spmv", Scale::Dev).expect("spmv is in the roster");

    // Profile exactly once. This is the expensive, hardware-INDEPENDENT
    // step — note it takes no GpuConfig argument at all.
    let t0 = std::time::Instant::now();
    let profile = profile_run(&bench.run, 4);
    println!("one-time profile of spmv: {:?}", t0.elapsed());
    println!();
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10}",
        "config", "occupancy", "full IPC", "err %", "sample %"
    );

    // Retarget: warps per SM (W) and SM count (S) change the epoch size
    // (= system occupancy), so homogeneous regions are re-identified from
    // the SAME profile; the paper's Figs. 12-13 sweep.
    for (w, s) in [
        (16u32, 8u32),
        (32, 8),
        (16, 14),
        (32, 14),
        (48, 14),
        (48, 28),
    ] {
        let gpu = GpuConfig::with_occupancy(w, s);
        let full = simulate_run(&bench.run, &gpu, &mut NullSampling, None);
        let tbp = run_tbpoint(&bench.run, &profile, &TbpointConfig::default(), &gpu)?;
        println!(
            "{:>8} {:>10} {:>10.3} {:>10.2} {:>10.1}",
            format!("W{w}S{s}"),
            gpu.system_occupancy(&bench.run.kernel),
            full.overall_ipc(),
            tbp.error_vs(full.overall_ipc()),
            tbp.sample_size() * 100.0
        );
    }
    println!();
    println!("(The profile was reused verbatim across all six configurations —");
    println!(" hardware independence + one-time profiling, the Table II claims.)");
    Ok(())
}
